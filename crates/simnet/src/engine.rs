//! The discrete-event engine and the blocking process API.
//!
//! # Execution model
//!
//! Each simulated process is a closure written in natural blocking style
//! (`ctx.recv(..)`, `ctx.hold(..)`), hosted on a worker thread leased from
//! a global pool (threads are reused across processes and across
//! [`Simulation::run`] calls, so sweeps stop paying thread-creation cost
//! after warm-up). The engine runs **exactly one process at a time** and
//! schedules by *direct handoff*: exclusive ownership of the whole engine
//! state (the "baton") travels together with control.
//!
//! * Non-blocking simulator calls (`transmit`, `try_recv`, a `recv` whose
//!   message has already arrived) are serviced **inline** on the calling
//!   process's thread — no hop to an engine thread, no context switch.
//! * A blocking call (`hold`, `serve`, a `recv` that must wait) runs the
//!   event loop inline until the caller becomes runnable again (zero
//!   switches) or another process must run first, in which case the
//!   resume is written into that process's per-process resume slot and
//!   its thread is unparked directly — a single park/unpark handoff,
//!   with no channels and no allocation.
//!
//! Virtual time advances by processing events in `(time, sequence)`
//! order; ties are broken by insertion sequence. Because only the baton
//! holder ever touches engine state, runs are fully deterministic
//! regardless of OS scheduling, and scheduling decisions are identical to
//! a single-threaded event loop's.
//!
//! Receive matching uses tag-indexed mailboxes
//! ([`crate::mailbox`]): wildcard, tag-only and src-only matches are O(1)
//! amortized, and a message arriving for an already-waiting receiver is
//! handed over without touching the mailbox indexes at all.
//!
//! # Examples
//!
//! ```
//! use pdceval_simnet::engine::Simulation;
//! use pdceval_simnet::envelope::{Envelope, Matcher};
//! use pdceval_simnet::flight::{Stage, TransmitPlan};
//! use pdceval_simnet::host::HostSpec;
//! use pdceval_simnet::ids::ProcId;
//! use pdceval_simnet::time::SimDuration;
//!
//! let mut sim = Simulation::new();
//! let sender = sim.spawn("sender", HostSpec::sun_ipx(), |ctx| {
//!     let env = Envelope::new(ctx.pid(), ProcId(1), 7, bytes::Bytes::from_static(b"hi"));
//!     ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(
//!         SimDuration::from_micros(100),
//!     )]));
//! });
//! assert_eq!(sender, ProcId(0));
//! sim.spawn("receiver", HostSpec::sun_ipx(), |ctx| {
//!     let msg = ctx.recv(Matcher::tagged(7));
//!     assert_eq!(&msg.payload[..], b"hi");
//! });
//! let outcome = sim.run().expect("no deadlock");
//! assert_eq!(outcome.end_time.as_micros_f64(), 100.0);
//! ```

use crate::calq::CalendarQueue;
use crate::envelope::{Envelope, Matcher};
use crate::error::SimError;
use crate::flight::{Flight, Stage, TransmitPlan};
use crate::host::HostSpec;
use crate::ids::{LazyName, ProcId, ResourceId};
use crate::mailbox::Mailbox;
use crate::resource::{Resource, ResourceStats, Waiter};
use crate::sched::{spawn_job, HandoffSlot, ParkCell};
use crate::time::{SimDuration, SimTime};
use crate::work::Work;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Engine <-> process handoff protocol
// ---------------------------------------------------------------------------

/// Handed to a process through its resume slot together with the baton.
#[derive(Debug)]
struct Resume {
    time: SimTime,
    kind: ResumeKind,
}

#[derive(Debug)]
enum ResumeKind {
    /// Plain continuation (hold elapsed, service completed, start signal).
    Ok,
    /// A matched message for a blocked `recv`.
    Msg(Envelope),
    /// The simulation is being torn down; unwind quietly.
    Abort,
}

/// Panic payload used to unwind process threads when the simulation is torn
/// down while they are still blocked (deadlock or early exit).
struct SimAborted;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum EventKind {
    Wake(ProcId),
    ServiceDone(ResourceId),
    FlightStage(usize),
    /// Direct delivery of a pure-latency single-fragment transmission
    /// (flight-machinery bypass); the payload is the pending-slot index.
    Deliver(usize),
}

// ---------------------------------------------------------------------------
// Shared state & the baton discipline
// ---------------------------------------------------------------------------

/// Per-process handoff endpoint: the slot through which the baton holder
/// hands this process its next resume.
#[derive(Debug, Default)]
struct ProcHandoff {
    resume: HandoffSlot<Resume>,
}

/// State shared between the `Simulation` handle, its worker jobs and the
/// thread inside `run()`.
///
/// `core` is NOT protected by a lock: the scheduling protocol guarantees
/// exactly one thread (the *baton holder*) accesses it at a time, and
/// every baton transfer goes through a release/acquire park-unpark pair,
/// so mutations are visible to the next holder. Before `run()` only the
/// configuring thread touches it; after `run()` returns, only the caller.
struct SimShared {
    core: UnsafeCell<Core>,
    /// Set once by `run()`; the latch tearing-down workers wake.
    main_park: OnceLock<Arc<ParkCell>>,
    /// Set (release) by the thread that ends the run, before waking main.
    done: AtomicBool,
    /// Process jobs not yet fully unwound (guards captured-state drops).
    live: AtomicUsize,
}

// SAFETY: see the struct docs — `core` access is serialized by the baton
// protocol, everything else is atomics/once-cells.
unsafe impl Send for SimShared {}
unsafe impl Sync for SimShared {}

impl SimShared {
    /// Grants access to the engine core. Callers must hold the baton (be
    /// the configuring thread pre-run, the running process, or the main
    /// thread after the done signal).
    #[allow(clippy::mut_from_ref)]
    unsafe fn core_mut(&self) -> &mut Core {
        &mut *self.core.get()
    }

    /// Ends the run with `result`, waking `run()`. Must hold the baton;
    /// conceptually passes it to the main thread.
    fn finish_run(&self, core: &mut Core, result: Result<SimTime, SimError>) {
        core.end = Some(result);
        self.done.store(true, Ordering::Release);
        if let Some(p) = self.main_park.get() {
            p.unpark();
        }
    }

    /// Marks one process job fully unwound (its captures dropped).
    fn retire(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(p) = self.main_park.get() {
                p.unpark();
            }
        }
    }
}

struct ProcSlot {
    name: LazyName,
    body: ProcBody,
    state: ProcState,
    finished_at: SimTime,
}

/// How a process slot is backed: lazily-registered ranks carry only their
/// closure until first touched, materialized ranks own a worker thread.
enum ProcBody {
    /// Registered via [`Simulation::spawn_lazy`] and not yet touched: no
    /// worker thread, no resume slot, no mailbox — just the closure and
    /// host, boxed so a dormant rank costs a few pointers.
    Dormant(Option<Box<DeferredSpawn>>),
    /// A live process: worker thread parked on its resume slot.
    Live {
        handoff: Arc<ProcHandoff>,
        /// The worker thread's wake latch.
        worker: Arc<ParkCell>,
    },
}

/// The deferred payload of a dormant rank.
struct DeferredSpawn {
    host: HostSpec,
    f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Lazily registered, never touched; free to the scheduler.
    Dormant,
    Ready,
    Blocked,
    Finished,
}

/// All mutable engine state; owned by whichever thread holds the baton.
struct Core {
    resources: Vec<Resource>,
    procs: Vec<ProcSlot>,
    /// One mailbox per *materialized* process; dormant ranks carry `None`
    /// (a pointer per rank) until their first delivery.
    mailboxes: Vec<Option<Box<Mailbox>>>,
    flights: Vec<Option<Flight>>,
    free_flights: Vec<usize>,
    pendings: Vec<Option<Pending>>,
    free_pendings: Vec<usize>,
    queue: CalendarQueue<EventKind>,
    seq: u64,
    clock: SimTime,
    runnable: VecDeque<(ProcId, ResumeKind)>,
    /// Materialized processes not yet `Finished`. Kept as a counter so the
    /// per-event completion check is O(1) instead of an O(procs) scan —
    /// dormant ranks never count (an untouched rank does not hold the run
    /// open).
    unfinished: usize,
    /// In-flight messages addressed to a rank that was dormant at send
    /// time. Each holds the run open (the rank is *about to* materialize)
    /// even if every live process has finished. Always 0 in eager runs.
    dormant_inflight: usize,
    messages_delivered: u64,
    wire_bytes_delivered: u64,
    events_scheduled: u64,
    peak_queue_depth: u64,
    direct_handoffs: u64,
    inline_resumes: u64,
    mailbox_fast_path_hits: u64,
    /// Result recorded by whichever thread ends the run.
    end: Option<Result<SimTime, SimError>>,
}

#[derive(Debug)]
struct Pending {
    remaining: usize,
    env: Option<Envelope>,
    /// Whether this message counted into `dormant_inflight` at send time.
    to_dormant: bool,
}

impl Core {
    fn empty() -> Core {
        Core {
            resources: Vec::new(),
            procs: Vec::new(),
            mailboxes: Vec::new(),
            flights: Vec::new(),
            free_flights: Vec::new(),
            pendings: Vec::new(),
            free_pendings: Vec::new(),
            queue: CalendarQueue::new(),
            seq: 0,
            clock: SimTime::ZERO,
            runnable: VecDeque::new(),
            unfinished: 0,
            dormant_inflight: 0,
            messages_delivered: 0,
            wire_bytes_delivered: 0,
            events_scheduled: 0,
            peak_queue_depth: 0,
            direct_handoffs: 0,
            inline_resumes: 0,
            mailbox_fast_path_hits: 0,
            end: None,
        }
    }

    /// Returns the core to its pre-spawn state while keeping registered
    /// resources (same ids, reset statistics) and allocated capacity.
    /// Callers must hold the baton with no live process jobs.
    fn reset_for_reuse(&mut self) {
        for r in &mut self.resources {
            r.reset();
        }
        self.procs.clear();
        self.mailboxes.clear();
        self.flights.clear();
        self.free_flights.clear();
        self.pendings.clear();
        self.free_pendings.clear();
        self.queue.clear();
        self.seq = 0;
        self.clock = SimTime::ZERO;
        self.runnable.clear();
        self.unfinished = 0;
        self.dormant_inflight = 0;
        self.messages_delivered = 0;
        self.wire_bytes_delivered = 0;
        self.events_scheduled = 0;
        self.peak_queue_depth = 0;
        self.direct_handoffs = 0;
        self.inline_resumes = 0;
        self.mailbox_fast_path_hits = 0;
        self.end = None;
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(at >= self.clock, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
        self.events_scheduled += 1;
        let depth = self.queue.len() as u64;
        if depth > self.peak_queue_depth {
            self.peak_queue_depth = depth;
        }
    }

    fn alloc_flight(&mut self, flight: Flight) -> usize {
        if let Some(idx) = self.free_flights.pop() {
            self.flights[idx] = Some(flight);
            idx
        } else {
            self.flights.push(Some(flight));
            self.flights.len() - 1
        }
    }

    fn alloc_pending(&mut self, p: Pending) -> usize {
        if let Some(idx) = self.free_pendings.pop() {
            self.pendings[idx] = Some(p);
            idx
        } else {
            self.pendings.push(Some(p));
            self.pendings.len() - 1
        }
    }

    fn all_finished(&self) -> bool {
        self.unfinished == 0 && self.dormant_inflight == 0
    }

    fn start_transmit(&mut self, shared: &Arc<SimShared>, env: Envelope, plan: TransmitPlan) {
        let to_dormant = self.procs[env.dst.index()].state == ProcState::Dormant;
        if to_dormant {
            self.dormant_inflight += 1;
        }
        let trains = plan.into_trains();
        if trains.is_empty() {
            // Instant delivery.
            let pending = self.alloc_pending(Pending {
                remaining: 1,
                env: Some(env),
                to_dormant,
            });
            self.complete_pending(shared, pending);
            return;
        }
        let pending = self.alloc_pending(Pending {
            remaining: trains.len(),
            env: Some(env),
            to_dormant,
        });
        // Pure-latency single-fragment sends (the dominant shape of
        // latency-only models and the engine microbenches) skip the
        // flight machinery: one `Deliver` event lands the envelope
        // directly, with the same virtual time and event-sequence
        // behavior the single-stage flight would have had.
        if trains.len() == 1 && trains[0].count == 1 && trains[0].stages.len() == 1 {
            if let Stage::Latency(d) = trains[0].stages[0] {
                if d.is_zero() {
                    self.complete_pending(shared, pending);
                } else {
                    self.schedule(self.clock + d, EventKind::Deliver(pending));
                }
                return;
            }
        }
        for train in trains {
            let flight = Flight {
                stages: train.stages.into(),
                pending,
                count: train.count,
                lag: SimDuration::ZERO,
            };
            let idx = self.alloc_flight(flight);
            self.advance_flight(shared, idx);
        }
    }

    fn advance_flight(&mut self, shared: &Arc<SimShared>, idx: usize) {
        loop {
            let flight = self.flights[idx]
                .as_mut()
                .expect("advancing a retired flight");
            match flight.stages.pop_front() {
                None => {
                    // The head has cleared the last stage. A train's tail
                    // runs `lag` behind it — delivery is when the tail
                    // lands, so the flight idles once more for the lag.
                    if !flight.lag.is_zero() {
                        let lag = std::mem::replace(&mut flight.lag, SimDuration::ZERO);
                        self.schedule(self.clock + lag, EventKind::FlightStage(idx));
                        return;
                    }
                    let pending = flight.pending;
                    self.flights[idx] = None;
                    self.free_flights.push(idx);
                    self.complete_pending(shared, pending);
                    return;
                }
                Some(Stage::Latency(d)) => {
                    // Latency shifts head and tail alike: lag is preserved.
                    if d.is_zero() {
                        continue;
                    }
                    self.schedule(self.clock + d, EventKind::FlightStage(idx));
                    return;
                }
                Some(Stage::Serve { resource, service }) => {
                    let started = if flight.count == 1 && flight.lag.is_zero() {
                        // Plain fragment: the historical fast path.
                        self.resources[resource.index()].enqueue(Waiter::Flight(idx), service)
                    } else {
                        // Batched train: the server releases the head
                        // after one `service`, then stays occupied while
                        // the tail clears. The tail leaves `(count-1)`
                        // services after the head — unless the incoming
                        // lag is already wider (an upstream bottleneck
                        // feeds fragments in slower than this server
                        // drains them, leaving idle gaps), in which case
                        // the spread carries through unchanged.
                        let count = flight.count as u64;
                        let lag_in = flight.lag;
                        let tail_spread = service * (count - 1);
                        let lag_out = lag_in.max(tail_spread);
                        flight.lag = lag_out;
                        self.resources[resource.index()].enqueue_train(
                            Waiter::Flight(idx),
                            service,
                            lag_out,
                            service * count,
                            count,
                        )
                    };
                    if let Some(d) = started {
                        self.schedule(self.clock + d, EventKind::ServiceDone(resource));
                    }
                    return;
                }
            }
        }
    }

    fn complete_pending(&mut self, shared: &Arc<SimShared>, idx: usize) {
        let done = {
            let p = self.pendings[idx].as_mut().expect("retired pending");
            p.remaining -= 1;
            p.remaining == 0
        };
        if done {
            let mut p = self.pendings[idx].take().expect("retired pending");
            self.free_pendings.push(idx);
            if p.to_dormant {
                debug_assert!(
                    self.dormant_inflight > 0,
                    "dormant-inflight underflow: completing a dormant-bound \
                     message the send path never counted"
                );
                self.dormant_inflight -= 1;
            }
            let mut env = p.env.take().expect("pending without envelope");
            env.delivered_at = self.clock;
            self.deliver(shared, env);
        }
    }

    fn deliver(&mut self, shared: &Arc<SimShared>, env: Envelope) {
        self.messages_delivered += 1;
        self.wire_bytes_delivered += env.wire_bytes;
        let dst = env.dst;
        if self.procs[dst.index()].state == ProcState::Dormant {
            // First touch of a lazily-registered rank: materialize it (its
            // closure starts executing now, at the delivery time) and give
            // it a mailbox holding this message.
            materialize(shared, self, dst);
            let mbox =
                self.mailboxes[dst.index()].get_or_insert_with(|| Box::new(Mailbox::default()));
            mbox.push(env);
            return;
        }
        let mbox = self.mailboxes[dst.index()]
            .as_mut()
            .expect("live process without a mailbox");
        if let Some(m) = mbox.waiting {
            // Fast path: a receiver is already blocked on this mailbox.
            // When it blocked, nothing queued matched its matcher (or it
            // would not have blocked), so if this arrival matches it is
            // the earliest match — hand it over without touching the
            // mailbox indexes.
            if m.matches(&env) {
                mbox.waiting = None;
                self.mailbox_fast_path_hits += 1;
                self.runnable.push_back((dst, ResumeKind::Msg(env)));
                return;
            }
        }
        mbox.push(env);
    }

    fn dispatch(&mut self, shared: &Arc<SimShared>, kind: EventKind) {
        match kind {
            EventKind::Wake(pid) => {
                self.runnable.push_back((pid, ResumeKind::Ok));
            }
            EventKind::ServiceDone(rid) => {
                let (done, next) = self.resources[rid.index()].complete();
                if let Some(d) = next {
                    self.schedule(self.clock + d, EventKind::ServiceDone(rid));
                }
                match done {
                    Some(Waiter::Proc(pid)) => {
                        self.runnable.push_back((pid, ResumeKind::Ok));
                    }
                    Some(Waiter::Flight(idx)) => {
                        self.advance_flight(shared, idx);
                    }
                    // A departed train's tail finished draining; the
                    // server is simply free again.
                    None => {}
                }
            }
            EventKind::FlightStage(idx) => {
                self.advance_flight(shared, idx);
            }
            EventKind::Deliver(pending) => {
                self.complete_pending(shared, pending);
            }
        }
    }
}

/// Drives the event loop until `me` (if given) is the next runnable
/// process — returning its resume for inline continuation — or control has
/// been handed off (to another process, or to `run()` on completion /
/// deadlock), in which case `None` is returned and the caller must not
/// touch the core again until re-granted the baton.
fn advance(shared: &Arc<SimShared>, core: &mut Core, me: Option<ProcId>) -> Option<Resume> {
    loop {
        if let Some((pid, kind)) = core.runnable.pop_front() {
            core.procs[pid.index()].state = ProcState::Ready;
            let resume = Resume {
                time: core.clock,
                kind,
            };
            if Some(pid) == me {
                // The caller itself is next: continue inline, zero switches.
                core.inline_resumes += 1;
                return Some(resume);
            }
            // Direct handoff: resume slot + unpark, baton goes with it.
            core.direct_handoffs += 1;
            let ProcBody::Live { handoff, worker } = &core.procs[pid.index()].body else {
                unreachable!("runnable process has no worker");
            };
            handoff.resume.put(resume);
            worker.unpark();
            return None;
        }
        if core.all_finished() {
            let end = core
                .procs
                .iter()
                .map(|p| p.finished_at)
                .max()
                .unwrap_or(core.clock);
            shared.finish_run(core, Ok(end));
            return None;
        }
        match core.queue.pop() {
            Some((time, _seq, kind)) => {
                debug_assert!(time >= core.clock);
                core.clock = time;
                core.dispatch(shared, kind);
            }
            None => {
                let blocked = core
                    .procs
                    .iter()
                    .filter(|p| p.state == ProcState::Blocked)
                    .map(|p| p.name.render())
                    .collect();
                let err = SimError::Deadlock {
                    time: core.clock,
                    blocked,
                };
                shared.finish_run(core, Err(err));
                return None;
            }
        }
    }
}

/// Builds the worker-pool job hosting one simulated process: wait for the
/// start resume, run the closure, then finish or report the failure. Both
/// the eager spawn path and lazy materialization go through here.
fn proc_job(
    shared: Arc<SimShared>,
    pid: ProcId,
    host: HostSpec,
    handoff: Arc<ProcHandoff>,
    f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
) -> crate::sched::Job {
    shared.live.fetch_add(1, Ordering::Relaxed);
    Box::new(move |park| {
        let ctx = Ctx {
            pid,
            host,
            shared: Arc::clone(&shared),
            handoff,
            park: Arc::clone(park),
            now: Cell::new(SimTime::ZERO),
        };
        // Wait for the engine's start signal before running user code.
        let first = ctx.wait_resume();
        match first.kind {
            ResumeKind::Abort => {
                shared.retire();
                return;
            }
            _ => ctx.now.set(first.time),
        }
        let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
        match result {
            Ok(()) => {
                // SAFETY: the finishing process holds the baton.
                let core = unsafe { shared.core_mut() };
                let slot = &mut core.procs[pid.index()];
                slot.state = ProcState::Finished;
                slot.finished_at = core.clock;
                core.unfinished -= 1;
                advance(&shared, core, None);
            }
            Err(payload) => {
                if payload.downcast_ref::<SimAborted>().is_some() {
                    // Quiet teardown: the engine already gave up on us.
                } else if let Some(crash) = payload.downcast_ref::<crate::perturb::InjectedCrash>()
                {
                    // An injected rank crash is a modeled fault, not a
                    // bug: end the run with a structured error so no
                    // surviving rank can deadlock on the dead one.
                    // SAFETY: the crashing process held the baton.
                    let core = unsafe { shared.core_mut() };
                    core.procs[pid.index()].state = ProcState::Finished;
                    core.unfinished -= 1;
                    let err = SimError::InjectedCrash {
                        name: core.procs[pid.index()].name.render(),
                        at: crash.at,
                    };
                    shared.finish_run(core, Err(err));
                } else {
                    // SAFETY: the panicking process held the baton.
                    let core = unsafe { shared.core_mut() };
                    core.procs[pid.index()].state = ProcState::Finished;
                    core.unfinished -= 1;
                    let err = SimError::ProcPanic {
                        name: core.procs[pid.index()].name.render(),
                        message: panic_message(payload.as_ref()),
                    };
                    shared.finish_run(core, Err(err));
                }
            }
        }
        drop(ctx); // Captured state is gone before we report retirement.
        shared.retire();
    })
}

/// Materializes a dormant rank on first touch: leases a worker thread for
/// its closure, creates its resume slot, and queues its start resume so it
/// begins executing at the current virtual time. Callers must hold the
/// baton.
fn materialize(shared: &Arc<SimShared>, core: &mut Core, pid: ProcId) {
    let spawn = match &mut core.procs[pid.index()].body {
        ProcBody::Dormant(d) => d.take().expect("materializing a rank twice"),
        ProcBody::Live { .. } => unreachable!("materializing a live process"),
    };
    let handoff = Arc::new(ProcHandoff::default());
    let lease = spawn_job(proc_job(
        Arc::clone(shared),
        pid,
        spawn.host,
        Arc::clone(&handoff),
        spawn.f,
    ));
    let slot = &mut core.procs[pid.index()];
    slot.body = ProcBody::Live {
        handoff,
        worker: lease.unparker(),
    };
    slot.state = ProcState::Ready;
    core.unfinished += 1;
    core.runnable.push_back((pid, ResumeKind::Ok));
}

// ---------------------------------------------------------------------------
// Process-side context
// ---------------------------------------------------------------------------

/// Handle through which a simulated process interacts with the simulation.
///
/// A `Ctx` is passed to the process closure at spawn time and must not be
/// sent to other threads (it is intentionally neither `Clone` nor usable
/// after the closure returns).
pub struct Ctx {
    pid: ProcId,
    host: HostSpec,
    shared: Arc<SimShared>,
    handoff: Arc<ProcHandoff>,
    park: Arc<ParkCell>,
    now: Cell<SimTime>,
}

impl Ctx {
    /// Parks until the baton holder hands this process a resume.
    fn wait_resume(&self) -> Resume {
        loop {
            if let Some(r) = self.handoff.resume.try_take() {
                return r;
            }
            self.park.park();
        }
    }

    /// Blocks this (already `Blocked`-marked) process: drives the event
    /// loop inline, parking only if another process must run first.
    fn block(&self) -> Resume {
        let inline = {
            // SAFETY: the running process holds the baton.
            let core = unsafe { self.shared.core_mut() };
            advance(&self.shared, core, Some(self.pid))
        };
        match inline {
            Some(resume) => resume,
            None => self.wait_resume(),
        }
    }

    fn apply(&self, resume: Resume) -> ResumeKind {
        if let ResumeKind::Abort = resume.kind {
            // resume_unwind (not panic!) skips the panic hook: teardown
            // of the surviving processes after an abort or an injected
            // crash is routine unwinding, not a bug report.
            std::panic::resume_unwind(Box::new(SimAborted));
        }
        self.now.set(resume.time);
        resume.kind
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The host this process runs on.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advances virtual time by `d` (models local activity that does not
    /// contend with other processes).
    pub fn hold(&self, d: SimDuration) {
        {
            // SAFETY: the running process holds the baton.
            let core = unsafe { self.shared.core_mut() };
            let at = core.clock + d;
            core.schedule(at, EventKind::Wake(self.pid));
            core.procs[self.pid.index()].state = ProcState::Blocked;
        }
        match self.apply(self.block()) {
            ResumeKind::Ok => {}
            other => unreachable!("hold resumed with {other:?}"),
        }
    }

    /// Performs computational work: advances virtual time by the cost of
    /// `w` on this process's host.
    pub fn work(&self, w: Work) {
        let d = w.cost_on(&self.host);
        if !d.is_zero() {
            self.hold(d);
        }
    }

    /// Queues at a FIFO resource and holds it for `service` time. Blocks
    /// (in virtual time) until service completes.
    pub fn serve(&self, resource: ResourceId, service: SimDuration) {
        {
            // SAFETY: the running process holds the baton.
            let core = unsafe { self.shared.core_mut() };
            let started = core.resources[resource.index()].enqueue(Waiter::Proc(self.pid), service);
            if let Some(d) = started {
                let at = core.clock + d;
                core.schedule(at, EventKind::ServiceDone(resource));
            }
            core.procs[self.pid.index()].state = ProcState::Blocked;
        }
        match self.apply(self.block()) {
            ResumeKind::Ok => {}
            other => unreachable!("serve resumed with {other:?}"),
        }
    }

    /// Launches a message transmission and returns immediately (virtual
    /// time does not advance, and control stays with the caller — the
    /// call is serviced inline with no scheduler hop).
    pub fn transmit(&self, mut env: Envelope, plan: TransmitPlan) {
        // SAFETY: the running process holds the baton.
        let core = unsafe { self.shared.core_mut() };
        env.sent_at = core.clock;
        core.start_transmit(&self.shared, env, plan);
    }

    /// Blocks until a message matching `m` is available, then removes and
    /// returns it. Messages are matched in arrival order. If a matching
    /// message has already arrived, it is returned inline without a
    /// scheduler hop.
    pub fn recv(&self, m: Matcher) -> Envelope {
        {
            // SAFETY: the running process holds the baton.
            let core = unsafe { self.shared.core_mut() };
            let mbox = core.mailboxes[self.pid.index()]
                .as_mut()
                .expect("running process without a mailbox");
            if let Some(env) = mbox.take_match(&m) {
                return env;
            }
            mbox.waiting = Some(m);
            core.procs[self.pid.index()].state = ProcState::Blocked;
        }
        match self.apply(self.block()) {
            ResumeKind::Msg(env) => env,
            other => unreachable!("recv resumed with {other:?}"),
        }
    }

    /// Non-blocking probe: removes and returns a matching message if one
    /// has already arrived. Serviced inline.
    pub fn try_recv(&self, m: Matcher) -> Option<Envelope> {
        // SAFETY: the running process holds the baton.
        let core = unsafe { self.shared.core_mut() };
        core.mailboxes[self.pid.index()]
            .as_mut()
            .expect("running process without a mailbox")
            .take_match(&m)
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// A configured simulation: resources plus spawned processes, ready to run.
///
/// See the [module documentation](self) for the execution model and an
/// example.
pub struct Simulation {
    shared: Arc<SimShared>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Simulation {
        Simulation::from_core(Core::empty())
    }

    /// Wraps an existing core (empty or recycled) in fresh control state.
    fn from_core(core: Core) -> Simulation {
        Simulation {
            shared: Arc::new(SimShared {
                core: UnsafeCell::new(core),
                main_park: OnceLock::new(),
                done: AtomicBool::new(false),
                live: AtomicUsize::new(0),
            }),
        }
    }

    /// Pre-run access to the core (the configuring thread trivially holds
    /// the baton: no worker touches the core before its first resume).
    fn core(&mut self) -> &mut Core {
        // SAFETY: `&mut self` on the configuring thread; workers are
        // parked awaiting resumes that only `run()` initiates.
        unsafe { self.shared.core_mut() }
    }

    /// Registers a FIFO resource and returns its id.
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        let core = self.core();
        let id = ResourceId(core.resources.len() as u32);
        core.resources.push(Resource::new(name.to_string()));
        id
    }

    /// Registers a FIFO resource named `{prefix}{index}` without
    /// formatting the name up front (it is rendered only if statistics or
    /// errors need it).
    pub fn add_resource_indexed(&mut self, prefix: &'static str, index: usize) -> ResourceId {
        let core = self.core();
        let id = ResourceId(core.resources.len() as u32);
        core.resources
            .push(Resource::new_indexed(prefix, index as u32));
        id
    }

    /// Number of processes spawned so far (the next spawn gets this id).
    pub fn proc_count(&mut self) -> usize {
        self.core().procs.len()
    }

    /// Spawns a simulated process. Ids are assigned densely in spawn order,
    /// so the *n*-th spawn receives `ProcId(n)`.
    pub fn spawn<F>(&mut self, name: &str, host: HostSpec, f: F) -> ProcId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.spawn_inner(LazyName::Owned(name.into()), host, f)
    }

    /// Spawns a simulated process named `{prefix}{index}` without paying
    /// for name formatting on the spawn path (the name is interned and
    /// rendered lazily). This is the fast path for SPMD-style spawns of
    /// many identically-prefixed ranks.
    pub fn spawn_indexed<F>(
        &mut self,
        prefix: &'static str,
        index: usize,
        host: HostSpec,
        f: F,
    ) -> ProcId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.spawn_inner(LazyName::Indexed(prefix, index as u32), host, f)
    }

    fn spawn_inner<F>(&mut self, name: LazyName, host: HostSpec, f: F) -> ProcId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let pid = ProcId(self.core().procs.len() as u32);
        let handoff = Arc::new(ProcHandoff::default());
        let shared = Arc::clone(&self.shared);
        let lease = spawn_job(proc_job(
            shared,
            pid,
            host,
            Arc::clone(&handoff),
            Box::new(f),
        ));
        let core = self.core();
        core.procs.push(ProcSlot {
            name,
            body: ProcBody::Live {
                handoff,
                worker: lease.unparker(),
            },
            state: ProcState::Ready,
            finished_at: SimTime::ZERO,
        });
        core.unfinished += 1;
        core.mailboxes.push(Some(Box::new(Mailbox::default())));
        pid
    }

    /// Registers a process *lazily*: no worker thread, resume slot or
    /// mailbox is created until the process is first touched by a message
    /// delivery. A dormant rank costs a name, a boxed closure and two
    /// pointers — a 10^6-rank scenario in which only 10^3 ranks ever see
    /// traffic prices like a 10^3-rank one.
    ///
    /// Semantics differ from [`Simulation::spawn`] in exactly one way: the
    /// closure starts executing at the virtual time of its first incoming
    /// message, not at t = 0. That is the natural shape of a *reactive*
    /// rank — one whose first action is to block on `recv`. Ranks that act
    /// spontaneously (send or compute before any receive) must be spawned
    /// eagerly. A dormant rank that is never messaged never runs: it does
    /// not hold the run open, is not reported in
    /// [`SimOutcome::proc_finish`], and costs the scheduler nothing.
    pub fn spawn_lazy<F>(&mut self, name: &str, host: HostSpec, f: F) -> ProcId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.spawn_lazy_inner(LazyName::Owned(name.into()), host, Box::new(f))
    }

    /// [`Simulation::spawn_lazy`] with an interned `{prefix}{index}` name:
    /// the bulk-registration fast path for sparse SPMD topologies.
    pub fn spawn_indexed_lazy<F>(
        &mut self,
        prefix: &'static str,
        index: usize,
        host: HostSpec,
        f: F,
    ) -> ProcId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.spawn_lazy_inner(LazyName::Indexed(prefix, index as u32), host, Box::new(f))
    }

    fn spawn_lazy_inner(
        &mut self,
        name: LazyName,
        host: HostSpec,
        f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
    ) -> ProcId {
        let core = self.core();
        let pid = ProcId(core.procs.len() as u32);
        core.procs.push(ProcSlot {
            name,
            body: ProcBody::Dormant(Some(Box::new(DeferredSpawn { host, f }))),
            state: ProcState::Dormant,
            finished_at: SimTime::ZERO,
        });
        core.mailboxes.push(None);
        pid
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if unfinished processes remain but no
    /// event can make progress, and [`SimError::ProcPanic`] if a simulated
    /// process panics.
    pub fn run(mut self) -> Result<SimOutcome, SimError> {
        self.run_once()
    }

    /// Runs the simulation to completion, then resets it for reuse:
    /// registered resources survive with their ids intact (statistics and
    /// queues cleared), while processes, mailboxes, events and the clock
    /// return to the pre-spawn state. Sweep harnesses call this in a loop,
    /// re-spawning processes per point without re-registering the
    /// platform's resource skeleton (the ROADMAP's `SpmdHarness`
    /// follow-on).
    ///
    /// The reset happens on both success and failure, so a deadlocked
    /// sweep point does not poison the harness.
    ///
    /// # Errors
    ///
    /// As [`Simulation::run`].
    pub fn run_in_place(&mut self) -> Result<SimOutcome, SimError> {
        let outcome = self.run_once();
        // SAFETY: run_once returned the baton to this thread and every
        // process job has retired, so we are the sole core accessor.
        let core = unsafe { self.shared.core_mut() };
        core.reset_for_reuse();
        let recycled = std::mem::replace(core, Core::empty());
        // Fresh control state (park latch, done/live flags) around the
        // recycled core; the old SimShared is dropped once the last
        // worker's Arc clone goes away.
        *self = Simulation::from_core(recycled);
        outcome
    }

    fn run_once(&mut self) -> Result<SimOutcome, SimError> {
        let main_park = ParkCell::for_current();
        self.shared
            .main_park
            .set(Arc::clone(&main_park))
            .expect("Simulation::run entered twice");
        {
            let shared = Arc::clone(&self.shared);
            let core = self.core();
            // All eagerly-spawned processes start ready at t = 0, in spawn
            // order; dormant ranks wait for their first delivery.
            for i in 0..core.procs.len() {
                if core.procs[i].state != ProcState::Dormant {
                    core.runnable.push_back((ProcId(i as u32), ResumeKind::Ok));
                }
            }
            advance(&shared, core, None);
        }
        // Wait for some thread to end the run (the advance above may have
        // done so synchronously for an empty simulation).
        while !self.shared.done.load(Ordering::Acquire) {
            main_park.park();
        }
        // We hold the baton again. Tear down: abort still-blocked
        // processes so their jobs unwind and release captured state.
        {
            // SAFETY: the done signal passed the baton back to us.
            let core = unsafe { self.shared.core_mut() };
            abort_unfinished(core);
        }
        // Wait until every job has fully unwound (dropped its closure) —
        // the caller may rely on being the sole owner of captured Arcs.
        while self.shared.live.load(Ordering::Acquire) != 0 {
            main_park.park();
        }

        let core = self.core();
        let result = core.end.take().expect("run ended without a result");
        result.map(|end_time| SimOutcome {
            end_time,
            // Never-materialized ranks never ran and are omitted: a sparse
            // million-rank run reports only the ranks that took part
            // (rendering a million names would dwarf the run itself).
            proc_finish: core
                .procs
                .iter()
                .filter(|p| p.state != ProcState::Dormant)
                .map(|p| (p.name.render(), p.finished_at))
                .collect(),
            resources: core
                .resources
                .iter()
                .enumerate()
                .map(|(i, r)| r.stats(ResourceId(i as u32), end_time))
                .collect(),
            messages_delivered: core.messages_delivered,
            wire_bytes_delivered: core.wire_bytes_delivered,
            events_scheduled: core.events_scheduled,
            peak_queue_depth: core.peak_queue_depth,
            direct_handoffs: core.direct_handoffs,
            inline_resumes: core.inline_resumes,
            mailbox_fast_path_hits: core.mailbox_fast_path_hits,
        })
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // A simulation dropped without `run()` (a sweep bailing on a config
        // error, a test tearing down early) still has jobs parked awaiting
        // their first resume; abort them so the worker threads and the
        // closures' captured state are released back to the pool. After a
        // completed `run()` every job has retired and this is a no-op.
        if self.shared.live.load(Ordering::Acquire) == 0 {
            return;
        }
        let park = Arc::clone(self.shared.main_park.get_or_init(ParkCell::for_current));
        {
            // SAFETY: `&mut self` with no run in progress (`run()` consumes
            // the simulation), so this thread holds the baton.
            let core = unsafe { self.shared.core_mut() };
            abort_unfinished(core);
        }
        while self.shared.live.load(Ordering::Acquire) != 0 {
            park.park();
        }
    }
}

/// Sends the abort resume to every live-but-unfinished process so its job
/// unwinds and releases captured state. Dormant ranks have no thread to
/// abort — their boxed closures simply drop with the core.
fn abort_unfinished(core: &Core) {
    for slot in &core.procs {
        if slot.state == ProcState::Finished || slot.state == ProcState::Dormant {
            continue;
        }
        let ProcBody::Live { handoff, worker } = &slot.body else {
            continue;
        };
        handoff.resume.put(Resume {
            time: core.clock,
            kind: ResumeKind::Abort,
        });
        worker.unpark();
    }
}

/// The number of spin iterations the scheduler's park latch attempts
/// before parking the OS thread: 0 on single-core machines (spinning
/// would steal cycles from the waker), a small bound otherwise. Exposed
/// so benchmark reports can record the setting in effect.
pub fn scheduler_spin_iters() -> u32 {
    crate::sched::spin_iters()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Results of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Virtual time at which the last process finished.
    pub end_time: SimTime,
    /// `(name, finish_time)` for every process, in spawn order.
    pub proc_finish: Vec<(String, SimTime)>,
    /// Usage statistics for every resource, in registration order.
    pub resources: Vec<ResourceStats>,
    /// Total messages delivered to mailboxes.
    pub messages_delivered: u64,
    /// Total wire bytes across all delivered messages.
    pub wire_bytes_delivered: u64,
    /// Events pushed onto the calendar queue over the run.
    pub events_scheduled: u64,
    /// High-water mark of resident events across all calendar buckets.
    pub peak_queue_depth: u64,
    /// Blocking resumes that crossed threads (resume slot + unpark).
    pub direct_handoffs: u64,
    /// Blocking resumes serviced inline on the caller's own thread.
    pub inline_resumes: u64,
    /// Deliveries handed straight to an already-waiting receiver.
    pub mailbox_fast_path_hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn empty_simulation_completes_at_zero() {
        let sim = Simulation::new();
        let out = sim.run().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO);
        assert_eq!(out.messages_delivered, 0);
    }

    #[test]
    fn hold_advances_time() {
        let mut sim = Simulation::new();
        sim.spawn("p", HostSpec::sun_ipx(), |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.hold(us(500));
            assert_eq!(ctx.now(), SimTime::ZERO + us(500));
        });
        let out = sim.run().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO + us(500));
    }

    #[test]
    fn work_advances_time_by_host_rate() {
        let mut sim = Simulation::new();
        sim.spawn("p", HostSpec::sun_ipx(), |ctx| {
            // 4.5 MFLOP on a 4.5 MFLOP/s host = 1 second.
            ctx.work(Work::flops(4_500_000));
            assert_eq!(ctx.now().as_secs_f64(), 1.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn send_and_receive_through_latency() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(1), 42, Bytes::from_static(b"payload"));
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(us(250))]));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::tagged(42));
            assert_eq!(env.delivered_at, SimTime::ZERO + us(250));
            assert_eq!(&env.payload[..], b"payload");
            assert_eq!(env.src, ProcId(0));
        });
        let out = sim.run().unwrap();
        assert_eq!(out.messages_delivered, 1);
    }

    #[test]
    fn shared_resource_serializes_transmissions() {
        // Two senders contend for one wire; the second message must wait.
        let mut sim = Simulation::new();
        let wire = sim.add_resource("wire");
        for i in 0..2 {
            sim.spawn(&format!("tx{i}"), HostSpec::sun_ipx(), move |ctx| {
                let env = Envelope::new(ctx.pid(), ProcId(2), i, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Serve {
                        resource: wire,
                        service: us(100),
                    }]),
                );
            });
        }
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let a = ctx.recv(Matcher::any());
            let b = ctx.recv(Matcher::any());
            assert_eq!(a.delivered_at, SimTime::ZERO + us(100));
            assert_eq!(b.delivered_at, SimTime::ZERO + us(200));
        });
        let out = sim.run().unwrap();
        let wire_stats = &out.resources[0];
        assert_eq!(wire_stats.served, 2);
        assert_eq!(wire_stats.busy_time, us(200));
    }

    #[test]
    fn fragments_pipeline_through_stages() {
        // 4 fragments through two sequential resources of equal service s:
        // pipelined completion = (n + 1) * s, not 2 n s.
        let mut sim = Simulation::new();
        let a = sim.add_resource("stage-a");
        let b = sim.add_resource("stage-b");
        sim.spawn("tx", HostSpec::sun_ipx(), move |ctx| {
            let frags = (0..4)
                .map(|_| {
                    vec![
                        Stage::Serve {
                            resource: a,
                            service: us(10),
                        },
                        Stage::Serve {
                            resource: b,
                            service: us(10),
                        },
                    ]
                })
                .collect();
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::fragments(frags));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::any());
            assert_eq!(env.delivered_at, SimTime::ZERO + us(50));
        });
        sim.run().unwrap();
    }

    #[test]
    fn batched_train_matches_per_fragment_pipeline() {
        // The same 4-fragment, two-stage pipeline as
        // `fragments_pipeline_through_stages`, priced as one batched train:
        // delivery time and every resource counter must be identical.
        use crate::flight::Train;
        let mut sim = Simulation::new();
        let a = sim.add_resource("stage-a");
        let b = sim.add_resource("stage-b");
        sim.spawn("tx", HostSpec::sun_ipx(), move |ctx| {
            let stages = vec![
                Stage::Serve {
                    resource: a,
                    service: us(10),
                },
                Stage::Serve {
                    resource: b,
                    service: us(10),
                },
            ];
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::trains(vec![Train::new(stages, 4)]));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::any());
            assert_eq!(env.delivered_at, SimTime::ZERO + us(50));
        });
        let out = sim.run().unwrap();
        for stats in &out.resources {
            assert_eq!(stats.served, 4, "{}", stats.name);
            assert_eq!(stats.busy_time, us(40), "{}", stats.name);
        }
    }

    #[test]
    fn switched_train_delivers_at_k_plus_one_services() {
        // k fragments over tx-serve + switch latency + rx-serve with equal
        // service w: pipelined delivery = (k + 1) w + L.
        use crate::flight::Train;
        let mut sim = Simulation::new();
        let tx = sim.add_resource("tx-port");
        let rx = sim.add_resource("rx-port");
        sim.spawn("tx", HostSpec::sun_ipx(), move |ctx| {
            let stages = vec![
                Stage::Serve {
                    resource: tx,
                    service: us(10),
                },
                Stage::Latency(us(7)),
                Stage::Serve {
                    resource: rx,
                    service: us(10),
                },
            ];
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::trains(vec![Train::new(stages, 2)]));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::any());
            // (2 + 1) * 10 + 7
            assert_eq!(env.delivered_at, SimTime::ZERO + us(37));
        });
        sim.run().unwrap();
    }

    #[test]
    fn train_drain_holds_the_wire_against_later_traffic() {
        // A 3-fragment train departs the shared wire head-first at t = 10µs
        // but keeps the wire busy until its tail clears at 30µs; a competing
        // single-fragment message queued behind it serves 30→40µs.
        use crate::flight::Train;
        let mut sim = Simulation::new();
        let wire = sim.add_resource("wire");
        sim.spawn("train-tx", HostSpec::sun_ipx(), move |ctx| {
            let stages = vec![Stage::Serve {
                resource: wire,
                service: us(10),
            }];
            let env = Envelope::new(ctx.pid(), ProcId(2), 1, Bytes::new());
            ctx.transmit(env, TransmitPlan::trains(vec![Train::new(stages, 3)]));
        });
        sim.spawn("single-tx", HostSpec::sun_ipx(), move |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(2), 2, Bytes::new());
            ctx.transmit(
                env,
                TransmitPlan::single(vec![Stage::Serve {
                    resource: wire,
                    service: us(10),
                }]),
            );
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let train = ctx.recv(Matcher::tagged(1));
            assert_eq!(train.delivered_at, SimTime::ZERO + us(30));
            let single = ctx.recv(Matcher::tagged(2));
            assert_eq!(single.delivered_at, SimTime::ZERO + us(40));
        });
        let out = sim.run().unwrap();
        let wire_stats = &out.resources[0];
        assert_eq!(wire_stats.served, 4);
        assert_eq!(wire_stats.busy_time, us(40));
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            ctx.hold(us(1_000));
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::instant());
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::any());
            assert_eq!(ctx.now(), SimTime::ZERO + us(1_000));
            assert_eq!(env.transit_time(), Some(SimDuration::ZERO));
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_recv_probes_without_blocking() {
        let mut sim = Simulation::new();
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            assert!(ctx.try_recv(Matcher::any()).is_none());
            ctx.hold(us(10));
            assert!(ctx.try_recv(Matcher::any()).is_none());
        });
        sim.run().unwrap();
    }

    #[test]
    fn selective_recv_skips_non_matching() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            for tag in [1u32, 2, 3] {
                let env = Envelope::new(ctx.pid(), ProcId(1), tag, Bytes::new());
                ctx.transmit(env, TransmitPlan::instant());
            }
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let b = ctx.recv(Matcher::tagged(2));
            assert_eq!(b.tag, 2);
            let a = ctx.recv(Matcher::any());
            assert_eq!(a.tag, 1, "matching must preserve arrival order");
            let c = ctx.recv(Matcher::any());
            assert_eq!(c.tag, 3);
        });
        sim.run().unwrap();
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("stuck", HostSpec::sun_ipx(), |ctx| {
            let _ = ctx.recv(Matcher::any());
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked, vec!["stuck".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bad", HostSpec::sun_ipx(), |_ctx| {
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcPanic { name, message }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Many processes wake at the same instant; completion order must be
        // identical across runs.
        fn run_once() -> Vec<(String, SimTime)> {
            let mut sim = Simulation::new();
            for i in 0..8 {
                sim.spawn(&format!("p{i}"), HostSpec::sun_ipx(), move |ctx| {
                    ctx.hold(us(100));
                    ctx.hold(us(100 + i));
                });
            }
            sim.run().unwrap().proc_finish
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
    }

    #[test]
    fn proc_ids_follow_spawn_order() {
        let mut sim = Simulation::new();
        let a = sim.spawn("a", HostSpec::sun_ipx(), |_| {});
        let b = sim.spawn("b", HostSpec::sun_ipx(), |_| {});
        assert_eq!(a, ProcId(0));
        assert_eq!(b, ProcId(1));
        assert_eq!(sim.proc_count(), 2);
        sim.run().unwrap();
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let mut sim = Simulation::new();
        let one_way = us(300);
        sim.spawn("a", HostSpec::sun_ipx(), move |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(one_way)]));
            let _ = ctx.recv(Matcher::any());
            assert_eq!(ctx.now(), SimTime::ZERO + us(600));
        });
        sim.spawn("b", HostSpec::sun_ipx(), move |ctx| {
            let _ = ctx.recv(Matcher::any());
            let env = Envelope::new(ctx.pid(), ProcId(0), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(one_way)]));
        });
        sim.run().unwrap();
    }

    #[test]
    fn spawn_indexed_renders_names_lazily() {
        let mut sim = Simulation::new();
        for i in 0..3 {
            sim.spawn_indexed("rank", i, HostSpec::sun_ipx(), |_| {});
        }
        let out = sim.run().unwrap();
        let names: Vec<&str> = out.proc_finish.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["rank0", "rank1", "rank2"]);
    }

    #[test]
    fn drop_without_run_releases_workers_and_captures() {
        let marker = Arc::new(());
        {
            let mut sim = Simulation::new();
            for i in 0..4 {
                let m = Arc::clone(&marker);
                sim.spawn_indexed("d", i, HostSpec::sun_ipx(), move |ctx| {
                    let _keep = m;
                    ctx.hold(us(1));
                });
            }
            // Dropped without run(): Drop must unwind the parked jobs.
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn run_in_place_reuses_resources_across_runs() {
        let mut sim = Simulation::new();
        let wire = sim.add_resource("wire");
        let mut outcomes = Vec::new();
        for _ in 0..3 {
            for i in 0..2 {
                sim.spawn_indexed("p", i, HostSpec::sun_ipx(), move |ctx| {
                    ctx.serve(wire, us(100));
                });
            }
            outcomes.push(sim.run_in_place().unwrap());
        }
        // Identical runs produce identical outcomes; resource stats do not
        // leak across resets.
        for out in &outcomes {
            assert_eq!(out.end_time, SimTime::ZERO + us(200));
            assert_eq!(out.resources[0].served, 2);
            assert_eq!(out.resources[0].busy_time, us(200));
        }
        // The skeleton is back to pre-spawn state.
        assert_eq!(sim.proc_count(), 0);
    }

    #[test]
    fn run_in_place_recovers_from_deadlock() {
        let mut sim = Simulation::new();
        let wire = sim.add_resource("wire");
        sim.spawn("stuck", HostSpec::sun_ipx(), |ctx| {
            let _ = ctx.recv(Matcher::any());
        });
        assert!(matches!(sim.run_in_place(), Err(SimError::Deadlock { .. })));
        // The same simulation runs a clean point afterwards.
        sim.spawn("ok", HostSpec::sun_ipx(), move |ctx| {
            ctx.serve(wire, us(50));
        });
        let out = sim.run_in_place().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO + us(50));
        assert_eq!(out.resources[0].served, 1);
    }

    #[test]
    fn counters_track_scheduling_handoffs_and_fastpath() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            ctx.hold(us(100));
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(us(50))]));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            // Blocks before the message exists: the delivery must take the
            // waiting-receiver fast path.
            let _ = ctx.recv(Matcher::any());
        });
        let out = sim.run().unwrap();
        // Two Wake events (the hold) never happen — one hold + one flight
        // stage are scheduled.
        assert_eq!(out.events_scheduled, 2);
        assert!(out.peak_queue_depth >= 1);
        assert_eq!(out.mailbox_fast_path_hits, 1);
        // Every blocking resume is either inline or a handoff; this run
        // has at least the two start signals handed off.
        assert!(out.direct_handoffs >= 2);
        let resumes = out.direct_handoffs + out.inline_resumes;
        assert!(resumes >= 3, "resumes = {resumes}");
        // Counters reset with the core.
        let mut sim2 = Simulation::new();
        sim2.spawn("p", HostSpec::sun_ipx(), |_| {});
        let clean = sim2.run().unwrap();
        assert_eq!(clean.events_scheduled, 0);
        assert_eq!(clean.mailbox_fast_path_hits, 0);
    }

    #[test]
    fn dormant_inflight_balances_with_multiple_messages_in_flight() {
        // Three dormant-bound messages are in flight at once: the
        // dormant-inflight counter must climb to 3 and drain back to 0
        // through `complete_pending` (whose debug_assert guards the
        // underflow) for the run to complete at all.
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            for i in 0..3u32 {
                let env = Envelope::new(ctx.pid(), ProcId(1), i, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Latency(us(50 + u64::from(i)))]),
                );
            }
        });
        sim.spawn_lazy("rx", HostSpec::sun_ipx(), |ctx| {
            for i in 0..3u32 {
                let env = ctx.recv(Matcher::tagged(i));
                assert_eq!(env.tag, i);
            }
        });
        let out = sim.run().unwrap();
        assert_eq!(out.proc_finish.len(), 2);
    }

    #[test]
    fn lazy_rank_materializes_on_first_delivery() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            ctx.hold(us(100));
            let env = Envelope::new(ctx.pid(), ProcId(1), 7, Bytes::from_static(b"wake"));
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(us(50))]));
        });
        sim.spawn_lazy("reactor", HostSpec::sun_ipx(), |ctx| {
            // The closure starts at the delivery time, not t = 0.
            assert_eq!(ctx.now(), SimTime::ZERO + us(150));
            let env = ctx.recv(Matcher::tagged(7));
            assert_eq!(&env.payload[..], b"wake");
            ctx.hold(us(10));
        });
        let out = sim.run().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO + us(160));
        let names: Vec<&str> = out.proc_finish.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["tx", "reactor"]);
    }

    #[test]
    fn untouched_lazy_ranks_cost_nothing_and_are_omitted() {
        let mut sim = Simulation::new();
        sim.spawn("only", HostSpec::sun_ipx(), |ctx| ctx.hold(us(5)));
        for i in 0..10_000 {
            sim.spawn_indexed_lazy("idle", i, HostSpec::sun_ipx(), |ctx| {
                let _ = ctx.recv(Matcher::any());
                panic!("an untouched rank must never run");
            });
        }
        let out = sim.run().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO + us(5));
        assert_eq!(out.proc_finish.len(), 1, "dormant ranks must be omitted");
        // One start handoff plus the hold's inline resume — the 10k
        // dormant ranks add nothing.
        assert_eq!(out.direct_handoffs + out.inline_resumes, 2);
    }

    #[test]
    fn lazy_ring_forwards_a_token_through_dormant_ranks() {
        // One eager rank launches a token; every other rank materializes
        // only when the token reaches it.
        const N: usize = 64;
        let mut sim = Simulation::new();
        sim.spawn_indexed("r", 0, HostSpec::sun_ipx(), |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(us(10))]));
            let back = ctx.recv(Matcher::any());
            assert_eq!(back.src, ProcId((N - 1) as u32));
            assert_eq!(ctx.now(), SimTime::ZERO + us(10 * N as u64));
        });
        for i in 1..N {
            sim.spawn_indexed_lazy("r", i, HostSpec::sun_ipx(), move |ctx| {
                let env = ctx.recv(Matcher::any());
                assert_eq!(env.src, ProcId((i - 1) as u32));
                let next = ProcId(((i + 1) % N) as u32);
                let env = Envelope::new(ctx.pid(), next, 0, Bytes::new());
                ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(us(10))]));
            });
        }
        let out = sim.run().unwrap();
        assert_eq!(out.proc_finish.len(), N);
        assert_eq!(out.messages_delivered, N as u64);
    }

    #[test]
    fn lazy_runs_are_deterministic_and_recover_in_place() {
        let run = |sim: &mut Simulation| {
            sim.spawn("root", HostSpec::sun_ipx(), |ctx| {
                for i in 1..4u32 {
                    let env = Envelope::new(ctx.pid(), ProcId(i), 0, Bytes::new());
                    ctx.transmit(
                        env,
                        TransmitPlan::single(vec![Stage::Latency(us(10 * i as u64))]),
                    );
                }
                for _ in 1..4 {
                    let _ = ctx.recv(Matcher::any());
                }
            });
            for i in 1..4 {
                sim.spawn_indexed_lazy("leaf", i, HostSpec::sun_ipx(), |ctx| {
                    let env = ctx.recv(Matcher::any());
                    let reply = Envelope::new(ctx.pid(), env.src, 1, Bytes::new());
                    ctx.transmit(reply, TransmitPlan::single(vec![Stage::Latency(us(5))]));
                });
            }
            sim.run_in_place().unwrap()
        };
        let mut sim = Simulation::new();
        let a = run(&mut sim);
        let b = run(&mut sim);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.proc_finish, b.proc_finish);
        assert_eq!(a.events_scheduled, b.events_scheduled);
    }

    #[test]
    fn deadlocked_lazy_run_aborts_materialized_ranks_cleanly() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::instant());
        });
        sim.spawn_lazy("stuck", HostSpec::sun_ipx(), |ctx| {
            let _ = ctx.recv(Matcher::any()); // gets the message...
            let _ = ctx.recv(Matcher::tagged(99)); // ...then waits forever
        });
        sim.spawn_lazy("never", HostSpec::sun_ipx(), |_| {});
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked, vec!["stuck".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn workers_are_reused_across_runs() {
        // Two back-to-back runs; the second should find pooled workers
        // (this also exercises teardown returning workers cleanly).
        for _ in 0..2 {
            let mut sim = Simulation::new();
            for i in 0..4 {
                sim.spawn_indexed("p", i, HostSpec::sun_ipx(), |ctx| ctx.hold(us(1)));
            }
            sim.run().unwrap();
        }
        assert!(crate::sched::pooled_workers() >= 1);
    }
}
