//! Abstract computational work, priced by a host model.
//!
//! Applications in this reproduction perform *real* computation (real DCTs,
//! FFT butterflies, comparisons) but advance *virtual* time analytically: the
//! application declares how much work a phase performed as a [`Work`] value,
//! and the host model converts it into a [`SimDuration`]. This keeps the
//! simulation deterministic — wall-clock speed of the machine running the
//! simulation never leaks into results.
//!
//! # Examples
//!
//! ```
//! use pdceval_simnet::host::HostSpec;
//! use pdceval_simnet::work::Work;
//!
//! let host = HostSpec::sun_ipx();
//! let w = Work::flops(1_000_000).plus(Work::bytes_moved(64 * 1024));
//! let d = w.cost_on(&host);
//! assert!(d.as_millis_f64() > 0.0);
//! ```

use crate::host::HostSpec;
use crate::time::SimDuration;
use std::ops::Add;

/// A quantity of computational work: floating-point operations, integer
/// operations, and bytes moved through memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Work {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Integer / logical operations performed (comparisons, index math).
    pub int_ops: u64,
    /// Bytes copied through memory (packing, transposes, buffer moves).
    pub bytes_moved: u64,
}

impl Work {
    /// No work at all.
    pub const ZERO: Work = Work {
        flops: 0,
        int_ops: 0,
        bytes_moved: 0,
    };

    /// Work consisting of `n` floating-point operations.
    pub const fn flops(n: u64) -> Work {
        Work {
            flops: n,
            int_ops: 0,
            bytes_moved: 0,
        }
    }

    /// Work consisting of `n` integer operations.
    pub const fn int_ops(n: u64) -> Work {
        Work {
            flops: 0,
            int_ops: n,
            bytes_moved: 0,
        }
    }

    /// Work consisting of moving `n` bytes through memory.
    pub const fn bytes_moved(n: u64) -> Work {
        Work {
            flops: 0,
            int_ops: 0,
            bytes_moved: n,
        }
    }

    /// Combines two work quantities (component-wise sum).
    pub fn plus(self, other: Work) -> Work {
        self + other
    }

    /// Scales all components by an integer factor.
    pub fn times(self, k: u64) -> Work {
        Work {
            flops: self.flops * k,
            int_ops: self.int_ops * k,
            bytes_moved: self.bytes_moved * k,
        }
    }

    /// Prices this work on the given host.
    ///
    /// Each component is divided by the host's corresponding rate; the total
    /// is the sum of the three components (the model assumes no overlap
    /// between FPU, ALU and memory traffic, which is appropriate for the
    /// single-issue early-1990s CPUs being modelled).
    pub fn cost_on(&self, host: &HostSpec) -> SimDuration {
        let secs = self.flops as f64 / (host.mflops * 1e6)
            + self.int_ops as f64 / (host.mips * 1e6)
            + self.bytes_moved as f64 / (host.mem_bw_mbs * 1e6);
        SimDuration::from_secs_f64(secs)
    }

    /// Returns true if all components are zero.
    pub fn is_zero(&self) -> bool {
        *self == Work::ZERO
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work {
            flops: self.flops + rhs.flops,
            int_ops: self.int_ops + rhs.int_ops,
            bytes_moved: self.bytes_moved + rhs.bytes_moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;

    #[test]
    fn flops_cost_scales_with_host_speed() {
        let slow = HostSpec::sun_elc();
        let fast = HostSpec::alpha_axp();
        let w = Work::flops(10_000_000);
        assert!(w.cost_on(&slow) > w.cost_on(&fast));
    }

    #[test]
    fn components_are_additive() {
        let host = HostSpec::sun_ipx();
        let a = Work::flops(1_000_000);
        let b = Work::bytes_moved(1_000_000);
        let both = a + b;
        let sum = a.cost_on(&host) + b.cost_on(&host);
        let combined = both.cost_on(&host);
        // Allow 1ns rounding slack from the two separate float conversions.
        let diff = combined.as_nanos().abs_diff(sum.as_nanos());
        assert!(diff <= 1, "diff was {diff}ns");
    }

    #[test]
    fn zero_work_is_free() {
        let host = HostSpec::sun_ipx();
        assert_eq!(Work::ZERO.cost_on(&host), SimDuration::ZERO);
        assert!(Work::ZERO.is_zero());
    }

    #[test]
    fn times_scales_components() {
        let w = Work {
            flops: 2,
            int_ops: 3,
            bytes_moved: 5,
        }
        .times(4);
        assert_eq!(w.flops, 8);
        assert_eq!(w.int_ops, 12);
        assert_eq!(w.bytes_moved, 20);
    }
}
