//! Virtual-time tracing: typed per-rank event timelines and counter
//! summaries for completed runs.
//!
//! A [`TraceSink`] collects what happened *inside* a simulated run — where
//! each rank spent its virtual time (compute spans, send overheads,
//! blocked receives), which link classes its fragments traversed, and
//! every perturbation the fault-injection layer applied (jitter,
//! retransmits, stragglers, crashes). The runtime layer records into the
//! sink through cheap [`TraceHandle`]s; recording is strictly
//! *observational* — no event is ever scheduled, no sequence number drawn,
//! no ordering changed — so a traced run is bit-identical to an untraced
//! one (pinned by proptest at the workspace level).
//!
//! When tracing is disabled the handle is simply absent
//! (`Option<TraceHandle>`), so the clean path pays one branch per
//! recording site and nothing else.
//!
//! Two consumers sit on top:
//!
//! * [`TraceSink::render_chrome`] exports the timeline as Chrome
//!   trace-event JSON (loads in Perfetto / `chrome://tracing`; one track
//!   per rank, spans named and categorized by phase);
//! * [`TraceSink::summary`] folds the timeline into a [`TraceSummary`] —
//!   the per-rank compute/blocked/network split and fault tally behind
//!   `pdceval explain`.

use crate::engine::SimOutcome;
use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The phase a traced span belongs to (its track color in Perfetto).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Local computation (`Node::compute` and friends).
    Compute,
    /// Send-side software overhead and fragment pricing.
    Send,
    /// Blocked in a receive, waiting for a message to arrive.
    RecvWait,
}

impl SpanPhase {
    /// Stable lower-case name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Compute => "compute",
            SpanPhase::Send => "send",
            SpanPhase::RecvWait => "recv-wait",
        }
    }
}

/// One typed, virtual-time-stamped trace event on a rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A closed span of virtual time spent in one phase.
    Span {
        /// The phase.
        phase: SpanPhase,
        /// Span start (virtual time).
        start: SimTime,
        /// Span end (virtual time).
        end: SimTime,
        /// Payload bytes involved (0 when not applicable).
        bytes: u64,
        /// Peer rank for point-to-point phases (`None` for compute).
        peer: Option<usize>,
    },
    /// One or more identical message fragments entering the fabric. A
    /// batched fragment train records a single event with `count > 1`
    /// rather than `count` separate events; `bytes` and `cost` stay
    /// per-fragment, and the sink's class totals are bumped by the full
    /// `count` so byte/fragment accounting is unchanged by batching.
    LinkFragment {
        /// Virtual time the fragment (train head) was launched.
        at: SimTime,
        /// Index into the sink's link-class table.
        class: u32,
        /// Wire bytes of one fragment.
        bytes: u64,
        /// Priced serial traversal cost of one fragment's stages.
        cost: SimDuration,
        /// Identical fragments this event covers (1 for a lone fragment).
        count: u32,
    },
    /// Perturbation: extra latency injected on a fragment.
    Jitter {
        /// Virtual time of the affected send.
        at: SimTime,
        /// The extra latency added.
        extra: SimDuration,
    },
    /// Perturbation: lost-fragment retransmit attempts priced in.
    Retransmit {
        /// Virtual time of the affected send.
        at: SimTime,
        /// Number of lost attempts priced before delivery.
        attempts: u32,
    },
    /// A collective operation started on this rank.
    Collective {
        /// Virtual time the collective was entered.
        at: SimTime,
        /// Operation name (`broadcast`, `global-sum`, ...).
        op: &'static str,
    },
    /// Perturbation: this rank's host group runs slowed by a factor.
    Straggler {
        /// The compute slowdown factor (>= 1).
        factor: f64,
    },
    /// Fault injection terminated this rank.
    Crash {
        /// Virtual time of the crash.
        at: SimTime,
    },
}

/// Byte/fragment totals for one link class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkClassTotal {
    /// The link class name (e.g. `Ethernet`).
    pub class: String,
    /// Total wire bytes sent over the class.
    pub bytes: u64,
    /// Total fragments sent over the class.
    pub fragments: u64,
}

/// Cheap monotonic counters describing one completed run: the engine's
/// scheduling/delivery counters plus (when traced) the fabric and
/// perturbation totals. Carried on run results and emitted as opt-in
/// store fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterSummary {
    /// Events pushed onto the engine's event heap.
    pub events_scheduled: u64,
    /// High-water mark of the event heap depth.
    pub peak_queue_depth: u64,
    /// Blocking resumes that crossed threads (resume slot + unpark).
    pub direct_handoffs: u64,
    /// Blocking resumes serviced inline on the caller's thread.
    pub inline_resumes: u64,
    /// Deliveries that matched an already-waiting receiver (mailbox
    /// fast path).
    pub mailbox_fast_path_hits: u64,
    /// Total messages delivered to mailboxes.
    pub messages_delivered: u64,
    /// Total wire bytes across delivered messages.
    pub wire_bytes: u64,
    /// Lost-fragment retransmit attempts priced by the perturbation layer
    /// (0 when untraced or unperturbed).
    pub retransmits: u64,
    /// Per-link-class byte/fragment totals (empty when untraced).
    pub links: Vec<LinkClassTotal>,
}

impl CounterSummary {
    /// The engine-side counters of a completed run (no fabric totals).
    pub fn from_sim(out: &SimOutcome) -> CounterSummary {
        CounterSummary {
            events_scheduled: out.events_scheduled,
            peak_queue_depth: out.peak_queue_depth,
            direct_handoffs: out.direct_handoffs,
            inline_resumes: out.inline_resumes,
            mailbox_fast_path_hits: out.mailbox_fast_path_hits,
            messages_delivered: out.messages_delivered,
            wire_bytes: out.wire_bytes_delivered,
            retransmits: 0,
            links: Vec::new(),
        }
    }
}

/// Where one rank's virtual time went, folded from its span timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// The rank.
    pub rank: usize,
    /// Total time in compute spans.
    pub compute: SimDuration,
    /// Total time blocked in receives.
    pub blocked: SimDuration,
    /// Total time in send-side overhead spans.
    pub network: SimDuration,
    /// The rank's finish time (zero if it never finished, e.g. crashed).
    pub finish: SimDuration,
}

/// The folded explanation of a traced run: per-rank time split, link
/// totals and the injected-fault tally.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// One summary per rank, in rank order.
    pub ranks: Vec<RankSummary>,
    /// Per-link-class totals, in first-use order.
    pub links: Vec<LinkClassTotal>,
    /// Total retransmit attempts priced in.
    pub retransmits: u64,
    /// Number of fragments that received injected jitter.
    pub jitter_events: u64,
    /// Total injected jitter latency.
    pub jitter_total: SimDuration,
    /// The injected crash, if one fired: `(rank, virtual time)`.
    pub crash: Option<(usize, SimTime)>,
}

/// Collects the typed timeline of one run, one event vector per rank.
///
/// Ranks append through [`TraceHandle`]s under a mutex; because the
/// engine's baton discipline runs exactly one rank at a time, the lock is
/// never contended and each rank's own timeline is appended in its
/// program order — fully deterministic regardless of worker threads.
#[derive(Debug)]
pub struct TraceSink {
    ranks: Vec<Vec<TraceEvent>>,
    classes: Vec<String>,
    link_bytes: Vec<u64>,
    link_frags: Vec<u64>,
    retransmits: u64,
    jitter_events: u64,
    jitter_total: SimDuration,
    crash: Option<(usize, SimTime)>,
}

impl TraceSink {
    /// An empty sink for `nranks` ranks.
    pub fn new(nranks: usize) -> TraceSink {
        TraceSink {
            ranks: vec![Vec::new(); nranks],
            classes: Vec::new(),
            link_bytes: Vec::new(),
            link_frags: Vec::new(),
            retransmits: 0,
            jitter_events: 0,
            jitter_total: SimDuration::ZERO,
            crash: None,
        }
    }

    /// An empty sink wrapped for sharing across rank closures.
    pub fn shared(nranks: usize) -> Arc<Mutex<TraceSink>> {
        Arc::new(Mutex::new(TraceSink::new(nranks)))
    }

    /// Number of ranks the sink was created for.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// The recorded timeline of `rank`, in recording order.
    pub fn rank_events(&self, rank: usize) -> &[TraceEvent] {
        &self.ranks[rank]
    }

    /// The link-class name behind a [`TraceEvent::LinkFragment`] index.
    pub fn class_name(&self, class: u32) -> &str {
        &self.classes[class as usize]
    }

    fn class_index(&mut self, name: &str) -> u32 {
        if let Some(i) = self.classes.iter().position(|c| c == name) {
            return i as u32;
        }
        self.classes.push(name.to_string());
        self.link_bytes.push(0);
        self.link_frags.push(0);
        (self.classes.len() - 1) as u32
    }

    /// Records a closed span on `rank`'s timeline.
    pub fn span(
        &mut self,
        rank: usize,
        phase: SpanPhase,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        peer: Option<usize>,
    ) {
        self.ranks[rank].push(TraceEvent::Span {
            phase,
            start,
            end,
            bytes,
            peer,
        });
    }

    /// Records one fragment entering the fabric and bumps the class totals.
    pub fn link_fragment(
        &mut self,
        rank: usize,
        class: &str,
        bytes: u64,
        at: SimTime,
        cost: SimDuration,
    ) {
        self.link_train(rank, class, bytes, 1, at, cost);
    }

    /// Records a train of `count` identical fragments entering the fabric
    /// as one coalesced event. `bytes` and `cost` are per-fragment; the
    /// class totals are bumped by all `count` fragments.
    pub fn link_train(
        &mut self,
        rank: usize,
        class: &str,
        bytes: u64,
        count: u32,
        at: SimTime,
        cost: SimDuration,
    ) {
        let idx = self.class_index(class);
        self.link_bytes[idx as usize] += bytes * count as u64;
        self.link_frags[idx as usize] += count as u64;
        self.ranks[rank].push(TraceEvent::LinkFragment {
            at,
            class: idx,
            bytes,
            cost,
            count,
        });
    }

    /// Records injected fragment jitter.
    pub fn jitter(&mut self, rank: usize, at: SimTime, extra: SimDuration) {
        self.jitter_events += 1;
        self.jitter_total += extra;
        self.ranks[rank].push(TraceEvent::Jitter { at, extra });
    }

    /// Records priced retransmit attempts for one lost fragment.
    pub fn retransmit(&mut self, rank: usize, at: SimTime, attempts: u32) {
        self.retransmits += attempts as u64;
        self.ranks[rank].push(TraceEvent::Retransmit { at, attempts });
    }

    /// Records entry into a collective operation.
    pub fn collective(&mut self, rank: usize, at: SimTime, op: &'static str) {
        self.ranks[rank].push(TraceEvent::Collective { at, op });
    }

    /// Records that `rank` runs under a straggler slowdown.
    pub fn straggler(&mut self, rank: usize, factor: f64) {
        self.ranks[rank].push(TraceEvent::Straggler { factor });
    }

    /// Records an injected crash terminating `rank`.
    pub fn crash(&mut self, rank: usize, at: SimTime) {
        self.crash = Some((rank, at));
        self.ranks[rank].push(TraceEvent::Crash { at });
    }

    /// Folds the engine counters of a completed run together with the
    /// sink's fabric and perturbation totals.
    pub fn counter_summary(&self, sim: &SimOutcome) -> CounterSummary {
        let mut c = CounterSummary::from_sim(sim);
        c.retransmits = self.retransmits;
        c.links = self.link_totals();
        c
    }

    /// Per-link-class totals, in first-use order.
    pub fn link_totals(&self) -> Vec<LinkClassTotal> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, name)| LinkClassTotal {
                class: name.clone(),
                bytes: self.link_bytes[i],
                fragments: self.link_frags[i],
            })
            .collect()
    }

    /// Folds the timeline into the per-rank time split behind
    /// `pdceval explain`. `rank_finish` is the per-rank finish time of the
    /// run (missing entries — e.g. a crashed rank — read as zero).
    pub fn summary(&self, rank_finish: &[SimDuration]) -> TraceSummary {
        let ranks = self
            .ranks
            .iter()
            .enumerate()
            .map(|(rank, events)| {
                let mut compute = SimDuration::ZERO;
                let mut blocked = SimDuration::ZERO;
                let mut network = SimDuration::ZERO;
                for ev in events {
                    if let TraceEvent::Span {
                        phase, start, end, ..
                    } = ev
                    {
                        let d = end.since(*start);
                        match phase {
                            SpanPhase::Compute => compute += d,
                            SpanPhase::RecvWait => blocked += d,
                            SpanPhase::Send => network += d,
                        }
                    }
                }
                RankSummary {
                    rank,
                    compute,
                    blocked,
                    network,
                    finish: rank_finish.get(rank).copied().unwrap_or(SimDuration::ZERO),
                }
            })
            .collect();
        TraceSummary {
            ranks,
            links: self.link_totals(),
            retransmits: self.retransmits,
            jitter_events: self.jitter_events,
            jitter_total: self.jitter_total,
            crash: self.crash,
        }
    }

    /// Renders the timeline as Chrome trace-event JSON: one process
    /// (`pid` 0) named after `title`, one track (`tid`) per rank, spans as
    /// complete (`"X"`) events categorized by phase and perturbations as
    /// instant (`"i"`) events. Timestamps and durations are virtual-time
    /// microseconds. Loads directly in Perfetto or `chrome://tracing`.
    pub fn render_chrome(&self, title: &str) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let _ = write!(
            out,
            "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(title)
        );
        for rank in 0..self.ranks.len() {
            let _ = write!(
                out,
                ",\n  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {rank}, \
                 \"args\": {{\"name\": \"rank {rank}\"}}}}"
            );
        }
        for (rank, events) in self.ranks.iter().enumerate() {
            for ev in events {
                out.push_str(",\n  ");
                self.render_event(&mut out, rank, ev);
            }
        }
        out.push_str("\n]}\n");
        out
    }

    fn render_event(&self, out: &mut String, rank: usize, ev: &TraceEvent) {
        match ev {
            TraceEvent::Span {
                phase,
                start,
                end,
                bytes,
                peer,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 0, \
                     \"tid\": {rank}, \"ts\": {}, \"dur\": {}, \"args\": {{\"bytes\": {bytes}",
                    phase.name(),
                    phase.name(),
                    micros(*start),
                    micros_d(end.since(*start)),
                );
                if let Some(p) = peer {
                    let _ = write!(out, ", \"peer\": {p}");
                }
                out.push_str("}}");
            }
            TraceEvent::LinkFragment {
                at,
                class,
                bytes,
                cost,
                count,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"link {}\", \"cat\": \"link\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 0, \"tid\": {rank}, \"ts\": {}, \
                     \"args\": {{\"bytes\": {bytes}, \"cost_us\": {}",
                    escape(self.class_name(*class)),
                    micros(*at),
                    micros_d(*cost),
                );
                if *count > 1 {
                    let _ = write!(out, ", \"frags\": {count}");
                }
                out.push_str("}}");
            }
            TraceEvent::Jitter { at, extra } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"jitter\", \"cat\": \"perturb\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 0, \"tid\": {rank}, \"ts\": {}, \
                     \"args\": {{\"extra_us\": {}}}}}",
                    micros(*at),
                    micros_d(*extra),
                );
            }
            TraceEvent::Retransmit { at, attempts } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"retransmit\", \"cat\": \"perturb\", \"ph\": \"i\", \
                     \"s\": \"t\", \"pid\": 0, \"tid\": {rank}, \"ts\": {}, \
                     \"args\": {{\"attempts\": {attempts}}}}}",
                    micros(*at),
                );
            }
            TraceEvent::Collective { at, op } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"{op}\", \"cat\": \"collective\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 0, \"tid\": {rank}, \"ts\": {}, \"args\": {{}}}}",
                    micros(*at),
                );
            }
            TraceEvent::Straggler { factor } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"straggler\", \"cat\": \"perturb\", \"ph\": \"i\", \
                     \"s\": \"t\", \"pid\": 0, \"tid\": {rank}, \"ts\": 0, \
                     \"args\": {{\"factor\": {factor}}}}}"
                );
            }
            TraceEvent::Crash { at } => {
                let _ = write!(
                    out,
                    "{{\"name\": \"crash\", \"cat\": \"perturb\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 0, \"tid\": {rank}, \"ts\": {}, \"args\": {{}}}}",
                    micros(*at),
                );
            }
        }
    }
}

/// One rank's recording endpoint into a shared [`TraceSink`].
///
/// Cloneable and cheap; absent (`Option<TraceHandle>`) when tracing is
/// off, so untraced runs pay one branch per recording site.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    sink: Arc<Mutex<TraceSink>>,
    rank: usize,
}

impl TraceHandle {
    /// A handle recording as `rank` into `sink`.
    pub fn new(sink: Arc<Mutex<TraceSink>>, rank: usize) -> TraceHandle {
        TraceHandle { sink, rank }
    }

    /// Runs `f` with the locked sink and this handle's rank.
    #[inline]
    pub fn with(&self, f: impl FnOnce(&mut TraceSink, usize)) {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        f(&mut sink, self.rank);
    }
}

/// Virtual time as trace-export microseconds (fixed 3 decimals, so the
/// rendering is a pure function of the nanosecond value).
fn micros(t: SimTime) -> String {
    format!("{:.3}", t.as_micros_f64())
}

fn micros_d(d: SimDuration) -> String {
    format!("{:.3}", d.as_micros_f64())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + us(n)
    }

    #[test]
    fn sink_accumulates_per_rank_timelines_and_totals() {
        let mut sink = TraceSink::new(2);
        sink.span(0, SpanPhase::Compute, at(0), at(10), 0, None);
        sink.span(0, SpanPhase::Send, at(10), at(12), 256, Some(1));
        sink.link_fragment(0, "Ethernet", 256, at(10), us(3));
        sink.link_fragment(0, "Ethernet", 256, at(11), us(3));
        sink.link_fragment(0, "ATM WAN", 64, at(11), us(9));
        sink.span(1, SpanPhase::RecvWait, at(0), at(13), 256, Some(0));
        sink.jitter(0, at(10), us(2));
        sink.retransmit(0, at(11), 3);
        assert_eq!(sink.rank_events(0).len(), 7);
        assert_eq!(sink.rank_events(1).len(), 1);
        let links = sink.link_totals();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].class, "Ethernet");
        assert_eq!(links[0].bytes, 512);
        assert_eq!(links[0].fragments, 2);
        assert_eq!(links[1].class, "ATM WAN");

        let summary = sink.summary(&[us(12), us(13)]);
        assert_eq!(summary.ranks[0].compute, us(10));
        assert_eq!(summary.ranks[0].network, us(2));
        assert_eq!(summary.ranks[0].blocked, SimDuration::ZERO);
        assert_eq!(summary.ranks[1].blocked, us(13));
        assert_eq!(summary.ranks[1].finish, us(13));
        assert_eq!(summary.retransmits, 3);
        assert_eq!(summary.jitter_events, 1);
        assert_eq!(summary.jitter_total, us(2));
        assert_eq!(summary.crash, None);
    }

    #[test]
    fn link_train_coalesces_but_counts_every_fragment() {
        // One coalesced train event must bump the class totals exactly as
        // `count` separate link_fragment calls would, and its rendering
        // must carry the fragment count.
        let mut sink = TraceSink::new(1);
        sink.link_train(0, "Ethernet", 1500, 4, at(10), us(3));
        sink.link_fragment(0, "Ethernet", 250, at(20), us(1));
        assert_eq!(sink.rank_events(0).len(), 2);
        let links = sink.link_totals();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].bytes, 4 * 1500 + 250);
        assert_eq!(links[0].fragments, 5);
        let chrome = sink.render_chrome("demo/train");
        assert!(chrome.contains("\"frags\": 4"));
        // Lone fragments render without a frags arg, keeping pre-train
        // traces byte-identical.
        assert_eq!(chrome.matches("\"frags\"").count(), 1);
    }

    #[test]
    fn crash_is_recorded_on_the_rank_and_the_tally() {
        let mut sink = TraceSink::new(3);
        sink.span(1, SpanPhase::Compute, at(0), at(5), 0, None);
        sink.crash(1, at(5));
        assert_eq!(sink.summary(&[]).crash, Some((1, at(5))));
        assert!(matches!(
            sink.rank_events(1).last(),
            Some(TraceEvent::Crash { .. })
        ));
    }

    #[test]
    fn chrome_render_is_wellformed_and_deterministic() {
        let mut sink = TraceSink::new(2);
        sink.span(0, SpanPhase::Compute, at(0), at(10), 0, None);
        sink.span(1, SpanPhase::RecvWait, at(0), at(12), 128, Some(0));
        sink.link_fragment(0, "Ethernet", 128, at(10), us(2));
        sink.crash(1, at(12));
        let a = sink.render_chrome("demo/key");
        let b = sink.render_chrome("demo/key");
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\": ["));
        assert!(a.trim_end().ends_with("]}"));
        assert!(a.contains("\"name\": \"rank 1\""));
        assert!(a.contains("\"cat\": \"compute\""));
        assert!(a.contains("\"name\": \"link Ethernet\""));
        assert!(a.contains("\"name\": \"crash\""));
        assert!(a.contains("\"ts\": 10.000"));
        // Balanced braces/brackets — cheap structural sanity without a
        // nested-JSON parser in the workspace.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn counter_summary_merges_engine_and_fabric_totals() {
        use crate::engine::Simulation;
        use crate::host::HostSpec;

        let mut sim = Simulation::new();
        sim.spawn("p", HostSpec::sun_ipx(), |ctx| ctx.hold(us(5)));
        let out = sim.run().unwrap();
        let mut sink = TraceSink::new(1);
        sink.link_fragment(0, "Ethernet", 100, at(0), us(1));
        sink.retransmit(0, at(0), 2);
        let c = sink.counter_summary(&out);
        assert_eq!(c.events_scheduled, out.events_scheduled);
        assert_eq!(c.retransmits, 2);
        assert_eq!(c.links.len(), 1);
        assert_eq!(c.links[0].bytes, 100);
    }

    #[test]
    fn handles_record_under_their_rank() {
        let shared = TraceSink::shared(2);
        let h0 = TraceHandle::new(Arc::clone(&shared), 0);
        let h1 = TraceHandle::new(Arc::clone(&shared), 1);
        h0.with(|s, r| s.span(r, SpanPhase::Compute, at(0), at(1), 0, None));
        h1.with(|s, r| s.collective(r, at(1), "broadcast"));
        let sink = shared.lock().unwrap();
        assert_eq!(sink.rank_events(0).len(), 1);
        assert!(matches!(
            sink.rank_events(1)[0],
            TraceEvent::Collective {
                op: "broadcast",
                ..
            }
        ));
    }
}
