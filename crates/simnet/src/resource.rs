//! FIFO service resources.
//!
//! A [`ResourceId`] names a single-server FIFO queue inside the simulation:
//! a shared Ethernet wire, a host NIC, a PVM daemon, a CPU protocol stack.
//! Work is submitted as (waiter, service-time) pairs; the server serves one
//! request at a time in arrival order. Contention — the defining behaviour
//! of the paper's shared-medium Ethernet and of PVM's single-threaded
//! daemon — emerges from queueing at these resources.

use crate::ids::{LazyName, ProcId, ResourceId};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Who is waiting for a resource: a blocked process or an in-flight
/// message fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Waiter {
    /// A simulated process blocked in `Ctx::serve`.
    Proc(ProcId),
    /// A message-fragment flight (index into the engine's flight table).
    Flight(usize),
}

/// One queued request: a plain fragment/process (`units == 1`,
/// `drain == 0`) or a batched fragment train occupying the server as one
/// contiguous unit.
#[derive(Debug)]
struct Entry {
    waiter: Waiter,
    /// Time until the *head* completes and the waiter is released.
    head: SimDuration,
    /// Extra occupancy after the head departs, while the train's tail is
    /// still clearing the server. The next waiter starts only after it.
    drain: SimDuration,
    /// Server busy time this request truthfully accounts for (for a train
    /// of `k` fragments of service `w`: `k·w`, which can be less than
    /// `head + drain` when upstream stages feed the tail in slower than
    /// the server drains it).
    busy: SimDuration,
    /// Fragments this request stands for (`served` grows by this).
    units: u64,
}

/// What currently holds the server: a request's head in service, or a
/// departed train's tail still draining.
#[derive(Debug)]
struct InService {
    /// `None` once the head has departed and only the drain remains.
    waiter: Option<Waiter>,
    drain: SimDuration,
    units: u64,
}

/// Internal state of one FIFO resource. The name is a [`LazyName`]:
/// indexed names (`stack-tx{i}` and friends from the SPMD harness) are
/// rendered only when statistics are produced.
#[derive(Debug)]
pub(crate) struct Resource {
    name: LazyName,
    queue: VecDeque<Entry>,
    /// Fragments waiting in `queue` (trains count all their units).
    queued_units: usize,
    in_service: Option<InService>,
    busy_time: SimDuration,
    served: u64,
    max_queue: usize,
}

impl Resource {
    pub(crate) fn new(name: String) -> Resource {
        Resource::with_name(LazyName::Owned(name.into_boxed_str()))
    }

    pub(crate) fn new_indexed(prefix: &'static str, index: u32) -> Resource {
        Resource::with_name(LazyName::Indexed(prefix, index))
    }

    fn with_name(name: LazyName) -> Resource {
        Resource {
            name,
            queue: VecDeque::new(),
            queued_units: 0,
            in_service: None,
            busy_time: SimDuration::ZERO,
            served: 0,
            max_queue: 0,
        }
    }

    /// Adds a waiter to the queue. Returns the service duration to schedule
    /// if the server was idle and this waiter starts service immediately.
    pub(crate) fn enqueue(&mut self, w: Waiter, service: SimDuration) -> Option<SimDuration> {
        self.enqueue_entry(Entry {
            waiter: w,
            head: service,
            drain: SimDuration::ZERO,
            busy: service,
            units: 1,
        })
    }

    /// Adds a batched fragment train to the queue: the waiter is released
    /// after `head`, the server then stays occupied for `drain` more while
    /// the tail clears, `busy`/`units` keep the statistics per-fragment
    /// truthful. Returns the *head* service duration to schedule if the
    /// server was idle.
    pub(crate) fn enqueue_train(
        &mut self,
        w: Waiter,
        head: SimDuration,
        drain: SimDuration,
        busy: SimDuration,
        units: u64,
    ) -> Option<SimDuration> {
        self.enqueue_entry(Entry {
            waiter: w,
            head,
            drain,
            busy,
            units,
        })
    }

    fn enqueue_entry(&mut self, e: Entry) -> Option<SimDuration> {
        self.queued_units += e.units as usize;
        self.queue.push_back(e);
        let in_service_units = self.in_service.as_ref().map_or(0, |s| s.units as usize);
        let depth = self.queued_units + in_service_units;
        self.max_queue = self.max_queue.max(depth);
        if self.in_service.is_none() {
            self.start_next()
        } else {
            None
        }
    }

    /// Completes the current service interval. Returns the finished waiter
    /// (`None` when the interval was a departed train's tail draining) and,
    /// if another interval starts, its duration to schedule.
    ///
    /// # Panics
    ///
    /// Panics if the server was idle (an engine logic error).
    pub(crate) fn complete(&mut self) -> (Option<Waiter>, Option<SimDuration>) {
        let mut cur = self
            .in_service
            .take()
            .expect("resource completion with idle server");
        match cur.waiter.take() {
            Some(done) => {
                // Head departure: the waiter is released now. A train's
                // tail keeps the server for `drain` more.
                self.served += cur.units;
                if !cur.drain.is_zero() {
                    let drain = cur.drain;
                    self.in_service = Some(InService {
                        waiter: None,
                        drain: SimDuration::ZERO,
                        units: cur.units,
                    });
                    (Some(done), Some(drain))
                } else {
                    (Some(done), self.start_next())
                }
            }
            // Tail drained: the server frees up for the next waiter.
            None => (None, self.start_next()),
        }
    }

    fn start_next(&mut self) -> Option<SimDuration> {
        debug_assert!(self.in_service.is_none());
        if let Some(e) = self.queue.pop_front() {
            self.queued_units -= e.units as usize;
            self.busy_time += e.busy;
            self.in_service = Some(InService {
                waiter: Some(e.waiter),
                drain: e.drain,
                units: e.units,
            });
            Some(e.head)
        } else {
            None
        }
    }

    /// Returns the resource to its freshly registered state (empty queue,
    /// zeroed statistics) while keeping its name. Used by
    /// [`crate::engine::Simulation::run_in_place`] so sweep harnesses can
    /// reuse a registered resource skeleton across runs.
    pub(crate) fn reset(&mut self) {
        self.queue.clear();
        self.queued_units = 0;
        self.in_service = None;
        self.busy_time = SimDuration::ZERO;
        self.served = 0;
        self.max_queue = 0;
    }

    pub(crate) fn stats(&self, id: ResourceId, end: SimTime) -> ResourceStats {
        ResourceStats {
            id,
            name: self.name.render(),
            busy_time: self.busy_time,
            served: self.served,
            max_queue: self.max_queue,
            utilization: if end == SimTime::ZERO {
                0.0
            } else {
                self.busy_time.as_secs_f64() / (end - SimTime::ZERO).as_secs_f64()
            },
        }
    }
}

/// Usage statistics for one resource over a completed run.
///
/// The paper's §2 observes that a *system manager* evaluates tools by
/// utilization/throughput while a *user* evaluates by response time; these
/// statistics expose the system-manager perspective.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceStats {
    /// The resource's id.
    pub id: ResourceId,
    /// The resource's name as given to `Simulation::add_resource`.
    pub name: String,
    /// Total time the server spent serving.
    pub busy_time: SimDuration,
    /// Number of completed services.
    pub served: u64,
    /// Largest queue length observed (including the arriving request).
    pub max_queue: usize,
    /// `busy_time` divided by the run's end time.
    pub utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = Resource::new("wire".into());
        let started = r.enqueue(Waiter::Proc(ProcId(0)), us(10));
        assert_eq!(started, Some(us(10)));
    }

    #[test]
    fn busy_server_queues() {
        let mut r = Resource::new("wire".into());
        assert!(r.enqueue(Waiter::Proc(ProcId(0)), us(10)).is_some());
        assert!(r.enqueue(Waiter::Proc(ProcId(1)), us(20)).is_none());
        let (done, next) = r.complete();
        assert_eq!(done, Some(Waiter::Proc(ProcId(0))));
        assert_eq!(next, Some(us(20)));
        let (done, next) = r.complete();
        assert_eq!(done, Some(Waiter::Proc(ProcId(1))));
        assert_eq!(next, None);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = Resource::new("q".into());
        r.enqueue(Waiter::Flight(0), us(1));
        r.enqueue(Waiter::Flight(1), us(1));
        r.enqueue(Waiter::Flight(2), us(1));
        let (a, _) = r.complete();
        let (b, _) = r.complete();
        let (c, next) = r.complete();
        assert_eq!(a, Some(Waiter::Flight(0)));
        assert_eq!(b, Some(Waiter::Flight(1)));
        assert_eq!(c, Some(Waiter::Flight(2)));
        assert_eq!(next, None);
    }

    #[test]
    fn train_releases_head_then_drains() {
        // A 4-fragment train of 10 µs services: head departs after 10 µs,
        // tail drains 30 µs more, and only then does the next waiter start.
        let mut r = Resource::new("port".into());
        let started = r.enqueue_train(Waiter::Flight(0), us(10), us(30), us(40), 4);
        assert_eq!(started, Some(us(10)));
        assert!(r.enqueue(Waiter::Proc(ProcId(9)), us(5)).is_none());
        let (done, next) = r.complete();
        assert_eq!(done, Some(Waiter::Flight(0)), "head releases the waiter");
        assert_eq!(next, Some(us(30)), "tail drain keeps the server");
        let (done, next) = r.complete();
        assert_eq!(done, None, "drain completion releases no waiter");
        assert_eq!(next, Some(us(5)), "queued waiter starts after the drain");
        let (done, next) = r.complete();
        assert_eq!(done, Some(Waiter::Proc(ProcId(9))));
        assert_eq!(next, None);
        let s = r.stats(ResourceId(0), SimTime::from_nanos(45_000));
        assert_eq!(s.served, 5, "a train counts all its fragments");
        assert_eq!(s.busy_time, us(45));
        assert_eq!(s.max_queue, 5, "depth counts train units");
        assert!((s.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_drain_train_behaves_like_plain_service() {
        let mut r = Resource::new("port".into());
        r.enqueue_train(Waiter::Flight(0), us(10), SimDuration::ZERO, us(10), 1);
        let (done, next) = r.complete();
        assert_eq!(done, Some(Waiter::Flight(0)));
        assert_eq!(next, None);
        assert_eq!(
            r.stats(ResourceId(0), SimTime::from_nanos(10_000)).served,
            1
        );
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn completing_idle_server_panics() {
        let mut r = Resource::new("q".into());
        let _ = r.complete();
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut r = Resource::new("q".into());
        r.enqueue(Waiter::Flight(0), us(10));
        r.enqueue(Waiter::Flight(1), us(30));
        r.complete();
        r.reset();
        let s = r.stats(ResourceId(0), SimTime::from_nanos(1_000));
        assert_eq!(s.served, 0);
        assert_eq!(s.busy_time, SimDuration::ZERO);
        assert_eq!(s.max_queue, 0);
        assert_eq!(s.name, "q");
        // The server is idle again: a new waiter starts immediately.
        assert_eq!(r.enqueue(Waiter::Flight(2), us(5)), Some(us(5)));
    }

    #[test]
    fn stats_accumulate() {
        let mut r = Resource::new("q".into());
        r.enqueue(Waiter::Flight(0), us(10));
        r.enqueue(Waiter::Flight(1), us(30));
        r.complete();
        r.complete();
        let s = r.stats(ResourceId(0), SimTime::from_nanos(80_000));
        assert_eq!(s.served, 2);
        assert_eq!(s.busy_time, us(40));
        assert_eq!(s.max_queue, 2);
        assert!((s.utilization - 0.5).abs() < 1e-9);
    }
}
