//! FIFO service resources.
//!
//! A [`ResourceId`] names a single-server FIFO queue inside the simulation:
//! a shared Ethernet wire, a host NIC, a PVM daemon, a CPU protocol stack.
//! Work is submitted as (waiter, service-time) pairs; the server serves one
//! request at a time in arrival order. Contention — the defining behaviour
//! of the paper's shared-medium Ethernet and of PVM's single-threaded
//! daemon — emerges from queueing at these resources.

use crate::ids::{LazyName, ProcId, ResourceId};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Who is waiting for a resource: a blocked process or an in-flight
/// message fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Waiter {
    /// A simulated process blocked in `Ctx::serve`.
    Proc(ProcId),
    /// A message-fragment flight (index into the engine's flight table).
    Flight(usize),
}

/// Internal state of one FIFO resource. The name is a [`LazyName`]:
/// indexed names (`stack-tx{i}` and friends from the SPMD harness) are
/// rendered only when statistics are produced.
#[derive(Debug)]
pub(crate) struct Resource {
    name: LazyName,
    queue: VecDeque<(Waiter, SimDuration)>,
    in_service: Option<Waiter>,
    busy_time: SimDuration,
    served: u64,
    max_queue: usize,
}

impl Resource {
    pub(crate) fn new(name: String) -> Resource {
        Resource::with_name(LazyName::Owned(name.into_boxed_str()))
    }

    pub(crate) fn new_indexed(prefix: &'static str, index: u32) -> Resource {
        Resource::with_name(LazyName::Indexed(prefix, index))
    }

    fn with_name(name: LazyName) -> Resource {
        Resource {
            name,
            queue: VecDeque::new(),
            in_service: None,
            busy_time: SimDuration::ZERO,
            served: 0,
            max_queue: 0,
        }
    }

    /// Adds a waiter to the queue. Returns the service duration to schedule
    /// if the server was idle and this waiter starts service immediately.
    pub(crate) fn enqueue(&mut self, w: Waiter, service: SimDuration) -> Option<SimDuration> {
        self.queue.push_back((w, service));
        let depth = self.queue.len() + usize::from(self.in_service.is_some());
        self.max_queue = self.max_queue.max(depth);
        if self.in_service.is_none() {
            self.start_next()
        } else {
            None
        }
    }

    /// Completes the current service. Returns the finished waiter and, if
    /// another waiter starts service, its service duration.
    ///
    /// # Panics
    ///
    /// Panics if the server was idle (an engine logic error).
    pub(crate) fn complete(&mut self) -> (Waiter, Option<SimDuration>) {
        let done = self
            .in_service
            .take()
            .expect("resource completion with idle server");
        self.served += 1;
        let next = self.start_next();
        (done, next)
    }

    fn start_next(&mut self) -> Option<SimDuration> {
        debug_assert!(self.in_service.is_none());
        if let Some((w, service)) = self.queue.pop_front() {
            self.in_service = Some(w);
            self.busy_time += service;
            Some(service)
        } else {
            None
        }
    }

    /// Returns the resource to its freshly registered state (empty queue,
    /// zeroed statistics) while keeping its name. Used by
    /// [`crate::engine::Simulation::run_in_place`] so sweep harnesses can
    /// reuse a registered resource skeleton across runs.
    pub(crate) fn reset(&mut self) {
        self.queue.clear();
        self.in_service = None;
        self.busy_time = SimDuration::ZERO;
        self.served = 0;
        self.max_queue = 0;
    }

    pub(crate) fn stats(&self, id: ResourceId, end: SimTime) -> ResourceStats {
        ResourceStats {
            id,
            name: self.name.render(),
            busy_time: self.busy_time,
            served: self.served,
            max_queue: self.max_queue,
            utilization: if end == SimTime::ZERO {
                0.0
            } else {
                self.busy_time.as_secs_f64() / (end - SimTime::ZERO).as_secs_f64()
            },
        }
    }
}

/// Usage statistics for one resource over a completed run.
///
/// The paper's §2 observes that a *system manager* evaluates tools by
/// utilization/throughput while a *user* evaluates by response time; these
/// statistics expose the system-manager perspective.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceStats {
    /// The resource's id.
    pub id: ResourceId,
    /// The resource's name as given to `Simulation::add_resource`.
    pub name: String,
    /// Total time the server spent serving.
    pub busy_time: SimDuration,
    /// Number of completed services.
    pub served: u64,
    /// Largest queue length observed (including the arriving request).
    pub max_queue: usize,
    /// `busy_time` divided by the run's end time.
    pub utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = Resource::new("wire".into());
        let started = r.enqueue(Waiter::Proc(ProcId(0)), us(10));
        assert_eq!(started, Some(us(10)));
    }

    #[test]
    fn busy_server_queues() {
        let mut r = Resource::new("wire".into());
        assert!(r.enqueue(Waiter::Proc(ProcId(0)), us(10)).is_some());
        assert!(r.enqueue(Waiter::Proc(ProcId(1)), us(20)).is_none());
        let (done, next) = r.complete();
        assert_eq!(done, Waiter::Proc(ProcId(0)));
        assert_eq!(next, Some(us(20)));
        let (done, next) = r.complete();
        assert_eq!(done, Waiter::Proc(ProcId(1)));
        assert_eq!(next, None);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = Resource::new("q".into());
        r.enqueue(Waiter::Flight(0), us(1));
        r.enqueue(Waiter::Flight(1), us(1));
        r.enqueue(Waiter::Flight(2), us(1));
        let (a, _) = r.complete();
        let (b, _) = r.complete();
        let (c, next) = r.complete();
        assert_eq!(a, Waiter::Flight(0));
        assert_eq!(b, Waiter::Flight(1));
        assert_eq!(c, Waiter::Flight(2));
        assert_eq!(next, None);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn completing_idle_server_panics() {
        let mut r = Resource::new("q".into());
        let _ = r.complete();
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut r = Resource::new("q".into());
        r.enqueue(Waiter::Flight(0), us(10));
        r.enqueue(Waiter::Flight(1), us(30));
        r.complete();
        r.reset();
        let s = r.stats(ResourceId(0), SimTime::from_nanos(1_000));
        assert_eq!(s.served, 0);
        assert_eq!(s.busy_time, SimDuration::ZERO);
        assert_eq!(s.max_queue, 0);
        assert_eq!(s.name, "q");
        // The server is idle again: a new waiter starts immediately.
        assert_eq!(r.enqueue(Waiter::Flight(2), us(5)), Some(us(5)));
    }

    #[test]
    fn stats_accumulate() {
        let mut r = Resource::new("q".into());
        r.enqueue(Waiter::Flight(0), us(10));
        r.enqueue(Waiter::Flight(1), us(30));
        r.complete();
        r.complete();
        let s = r.stats(ResourceId(0), SimTime::from_nanos(80_000));
        assert_eq!(s.served, 2);
        assert_eq!(s.busy_time, us(40));
        assert_eq!(s.max_queue, 2);
        assert!((s.utilization - 0.5).abs() < 1e-9);
    }
}
