//! The fabric: network resources instantiated inside a simulation.
//!
//! A [`Fabric`] registers the resources that model a topology's
//! interconnects for a set of hosts — a single shared wire for Ethernet,
//! or per-host transmit/receive ports for switched networks, one set per
//! *link class* — and produces the *network portion* of per-fragment
//! transmission stage lists. Heterogeneous topologies carry one resource
//! set per populated host group (the intra-group link classes) plus one
//! for the inter-group link; the link class of an endpoint pair is
//! resolved from the topology's rank placement. The tool layer wraps
//! these stages with per-tool software costs.

use crate::engine::Simulation;
use crate::flight::Stage;
use crate::ids::ResourceId;
use crate::net::LinkParams;
use crate::topology::Topology;

/// The resources of one link class: either a single shared wire or
/// per-host transmit/receive ports covering a contiguous host range.
#[derive(Debug, Clone)]
struct LinkSet {
    /// The single shared medium (Ethernet), if any.
    wire: Option<ResourceId>,
    /// Per-host transmit port (switched networks), indexed by
    /// `host - start`.
    tx: Vec<ResourceId>,
    /// Per-host receive port (switched networks), indexed by
    /// `host - start`.
    rx: Vec<ResourceId>,
    /// First global host index this set covers.
    start: usize,
}

impl LinkSet {
    /// Registers the resources for `n` hosts starting at global index
    /// `start`, named after `label` (the legacy link name for
    /// single-group topologies, `group.link` otherwise, so resource
    /// statistics stay readable).
    fn build(
        sim: &mut Simulation,
        params: &LinkParams,
        label: &str,
        start: usize,
        n: usize,
    ) -> LinkSet {
        if params.shared_medium {
            LinkSet {
                wire: Some(sim.add_resource(&format!("{label}-wire"))),
                tx: Vec::new(),
                rx: Vec::new(),
                start,
            }
        } else {
            LinkSet {
                wire: None,
                tx: (start..start + n)
                    .map(|h| sim.add_resource(&format!("{label}-tx{h}")))
                    .collect(),
                rx: (start..start + n)
                    .map(|h| sim.add_resource(&format!("{label}-rx{h}")))
                    .collect(),
                start,
            }
        }
    }
}

/// Network resources for `n_hosts` hosts placed on a [`Topology`].
#[derive(Debug, Clone)]
pub struct Fabric {
    topology: Topology,
    /// Per-group intra-link resource sets, parallel to
    /// `topology.groups`; `None` for groups no host landed in.
    intra: Vec<Option<LinkSet>>,
    /// The inter-group link's resources (present when hosts span at
    /// least two groups).
    inter: Option<LinkSet>,
    /// Group index per global host, from the topology's placement.
    group_of: Vec<usize>,
    n_hosts: usize,
}

impl Fabric {
    /// Registers the fabric's resources in `sim` for `n_hosts` hosts
    /// placed on `topology` (ranks fill groups in declaration order).
    /// For a single-group (homogeneous) topology the registered
    /// resources — names and order — are exactly the classic
    /// one-interconnect fabric's.
    ///
    /// # Panics
    ///
    /// Panics if `n_hosts` is zero or exceeds the topology's capacity.
    pub fn build(sim: &mut Simulation, topology: &Topology, n_hosts: usize) -> Fabric {
        assert!(n_hosts > 0, "a fabric needs at least one host");
        assert!(
            n_hosts <= topology.total_hosts(),
            "{n_hosts} hosts exceed the topology's capacity of {}",
            topology.total_hosts()
        );
        let single = !topology.is_heterogeneous();
        // Precomputed boundaries: one pass over the groups instead of
        // re-running the linear rank→group scan per host.
        let placement = topology.placement();
        let group_of: Vec<usize> = (0..n_hosts).map(|h| placement.group_of(h)).collect();
        let mut intra = Vec::with_capacity(topology.groups.len());
        let mut start = 0;
        for g in &topology.groups {
            let n = g.count.min(n_hosts.saturating_sub(start));
            if n == 0 {
                intra.push(None);
            } else {
                let label = if single {
                    g.link.name.clone()
                } else {
                    format!("{}.{}", g.name, g.link.name)
                };
                intra.push(Some(LinkSet::build(sim, &g.link, &label, start, n)));
            }
            start += g.count;
        }
        let populated = intra.iter().filter(|s| s.is_some()).count();
        let inter = match (&topology.inter, populated) {
            (Some(params), 2..) => Some(LinkSet::build(sim, params, &params.name, 0, n_hosts)),
            _ => None,
        };
        Fabric {
            topology: topology.clone(),
            intra,
            inter,
            group_of,
            n_hosts,
        }
    }

    /// The primary (first) group's link parameters. For homogeneous
    /// fabrics this is *the* link; heterogeneous call sites should
    /// resolve per pair with [`Fabric::link_class`].
    pub fn params(&self) -> &LinkParams {
        &self.topology.primary().link
    }

    /// The topology this fabric instantiates.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of hosts attached.
    pub fn host_count(&self) -> usize {
        self.n_hosts
    }

    /// The link class the `(src_host, dst_host)` pair communicates over:
    /// the group's intra link when both hosts share a group (including
    /// `src_host == dst_host`), the inter-group link otherwise.
    ///
    /// # Panics
    ///
    /// Panics if a host index is out of range.
    pub fn link_class(&self, src_host: usize, dst_host: usize) -> &LinkParams {
        assert!(src_host < self.n_hosts, "src host {src_host} out of range");
        assert!(dst_host < self.n_hosts, "dst host {dst_host} out of range");
        self.route(src_host, dst_host).0
    }

    /// The resource set serving the `(src, dst)` pair.
    fn route(&self, src: usize, dst: usize) -> (&LinkParams, &LinkSet) {
        let gs = self.group_of[src];
        let gd = self.group_of[dst];
        if gs == gd {
            (
                &self.topology.groups[gs].link,
                self.intra[gs]
                    .as_ref()
                    .expect("populated group without a link set"),
            )
        } else {
            (
                self.topology
                    .inter
                    .as_ref()
                    .expect("cross-group pair without an inter link"),
                self.inter
                    .as_ref()
                    .expect("cross-group pair without inter resources"),
            )
        }
    }

    /// The network stages one fragment of `frag_bytes` traverses from
    /// `src_host` to `dst_host`, over the pair's link class.
    ///
    /// Shared medium: occupy the wire, then propagate.
    /// Switched: occupy the source port, propagate, occupy the destination
    /// port (ejection); many-to-one traffic thus contends at the receiver,
    /// which is how switched-network incast behaves.
    ///
    /// # Panics
    ///
    /// Panics if a host index is out of range, or if `src_host == dst_host`
    /// (processes on the same host exchange through memory, which is the
    /// tool layer's job to price).
    pub fn fragment_stages(&self, src_host: usize, dst_host: usize, frag_bytes: u64) -> Vec<Stage> {
        assert!(src_host < self.n_hosts, "src host {src_host} out of range");
        assert!(dst_host < self.n_hosts, "dst host {dst_host} out of range");
        assert_ne!(
            src_host, dst_host,
            "fabric does not route host-local messages"
        );
        let (params, set) = self.route(src_host, dst_host);
        let wire_time = params.wire_time(frag_bytes);
        match set.wire {
            Some(wire) => vec![
                Stage::Serve {
                    resource: wire,
                    service: wire_time,
                },
                Stage::Latency(params.latency),
            ],
            None => vec![
                Stage::Serve {
                    resource: set.tx[src_host - set.start],
                    service: wire_time,
                },
                Stage::Latency(params.latency),
                Stage::Serve {
                    resource: set.rx[dst_host - set.start],
                    service: wire_time,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::host::HostSpec;
    use crate::net::NetworkKind;
    use crate::topology::HostGroup;

    fn homo(kind: NetworkKind, n: usize) -> Topology {
        Topology::homogeneous(HostSpec::sun_ipx(), kind.params(), n)
    }

    fn mixed() -> Topology {
        Topology {
            groups: vec![
                HostGroup {
                    name: "fast".to_string(),
                    host: HostSpec::alpha_axp(),
                    count: 2,
                    link: NetworkKind::Fddi.params(),
                },
                HostGroup {
                    name: "slow".to_string(),
                    host: HostSpec::sun_elc(),
                    count: 3,
                    link: NetworkKind::Ethernet.params(),
                },
            ],
            inter: Some(NetworkKind::AtmWan.params()),
        }
    }

    #[test]
    fn ethernet_builds_one_wire() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &homo(NetworkKind::Ethernet, 4), 4);
        assert!(f.intra[0].as_ref().unwrap().wire.is_some());
        assert!(f.intra[0].as_ref().unwrap().tx.is_empty());
        let stages = f.fragment_stages(0, 1, 1000);
        assert_eq!(stages.len(), 2);
    }

    #[test]
    fn switched_builds_ports_per_host() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &homo(NetworkKind::AtmLan, 4), 4);
        let set = f.intra[0].as_ref().unwrap();
        assert!(set.wire.is_none());
        assert_eq!(set.tx.len(), 4);
        assert_eq!(set.rx.len(), 4);
        let stages = f.fragment_stages(2, 3, 1000);
        assert_eq!(stages.len(), 3);
    }

    #[test]
    fn distinct_hosts_use_distinct_ports() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &homo(NetworkKind::Fddi, 3), 3);
        let s01 = f.fragment_stages(0, 1, 100);
        let s21 = f.fragment_stages(2, 1, 100);
        // Different tx ports, same rx port.
        match (&s01[0], &s21[0]) {
            (Stage::Serve { resource: a, .. }, Stage::Serve { resource: b, .. }) => {
                assert_ne!(a, b)
            }
            _ => panic!("expected serve stages"),
        }
        match (&s01[2], &s21[2]) {
            (Stage::Serve { resource: a, .. }, Stage::Serve { resource: b, .. }) => {
                assert_eq!(a, b)
            }
            _ => panic!("expected serve stages"),
        }
    }

    #[test]
    #[should_panic(expected = "host-local")]
    fn local_routing_is_rejected() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &homo(NetworkKind::Fddi, 2), 2);
        let _ = f.fragment_stages(1, 1, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_host_is_rejected() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &homo(NetworkKind::Fddi, 2), 2);
        let _ = f.fragment_stages(0, 5, 100);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_build_is_rejected() {
        let mut sim = Simulation::new();
        let _ = Fabric::build(&mut sim, &homo(NetworkKind::Fddi, 2), 3);
    }

    #[test]
    fn mixed_topology_resolves_link_classes_per_pair() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &mixed(), 5);
        assert_eq!(f.link_class(0, 1).name, "FDDI");
        assert_eq!(f.link_class(2, 4).name, "Ethernet");
        assert_eq!(f.link_class(0, 3).name, "ATM WAN (NYNET)");
        // Intra-fast: switched FDDI, 3 stages. Intra-slow: shared
        // Ethernet, 2 stages. Cross-group: switched WAN, 3 stages on the
        // WAN's own ports.
        assert_eq!(f.fragment_stages(0, 1, 100).len(), 3);
        assert_eq!(f.fragment_stages(2, 4, 100).len(), 2);
        let cross = f.fragment_stages(1, 2, 100);
        assert_eq!(cross.len(), 3);
        let fast = f.fragment_stages(0, 1, 100);
        match (&cross[0], &fast[0]) {
            (Stage::Serve { resource: a, .. }, Stage::Serve { resource: b, .. }) => {
                assert_ne!(a, b, "cross-group traffic must use the inter link's ports")
            }
            _ => panic!("expected serve stages"),
        }
        // Cross-group latency comes from the inter link.
        match cross[1] {
            Stage::Latency(l) => assert_eq!(l, NetworkKind::AtmWan.params().latency),
            _ => panic!("expected a latency stage"),
        }
    }

    #[test]
    fn unpopulated_groups_get_no_resources() {
        // Only 2 hosts: all land in the fast group; no slow or inter
        // resources are registered.
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, &mixed(), 2);
        assert!(f.intra[0].is_some());
        assert!(f.intra[1].is_none());
        assert!(f.inter.is_none());
        assert_eq!(f.fragment_stages(0, 1, 64).len(), 3);
    }
}
