//! The fabric: network resources instantiated inside a simulation.
//!
//! A [`Fabric`] registers the resources that model one interconnect for a
//! set of hosts — a single shared wire for Ethernet, or per-host
//! transmit/receive ports for switched networks — and produces the
//! *network portion* of per-fragment transmission stage lists. The tool
//! layer wraps these stages with per-tool software costs.

use crate::engine::Simulation;
use crate::flight::Stage;
use crate::ids::ResourceId;
use crate::net::LinkParams;

/// Network resources for `n_hosts` hosts on one interconnect.
#[derive(Debug, Clone)]
pub struct Fabric {
    params: LinkParams,
    /// The single shared medium (Ethernet), if any.
    wire: Option<ResourceId>,
    /// Per-host transmit port (switched networks).
    tx: Vec<ResourceId>,
    /// Per-host receive port (switched networks).
    rx: Vec<ResourceId>,
    n_hosts: usize,
}

impl Fabric {
    /// Registers the fabric's resources in `sim` for `n_hosts` hosts on a
    /// link described by `params` — any link, built-in or spec-defined.
    ///
    /// # Panics
    ///
    /// Panics if `n_hosts` is zero.
    pub fn build(sim: &mut Simulation, params: LinkParams, n_hosts: usize) -> Fabric {
        assert!(n_hosts > 0, "a fabric needs at least one host");
        let (wire, tx, rx) = if params.shared_medium {
            (
                Some(sim.add_resource(&format!("{}-wire", params.name))),
                Vec::new(),
                Vec::new(),
            )
        } else {
            let tx = (0..n_hosts)
                .map(|i| sim.add_resource(&format!("{}-tx{i}", params.name)))
                .collect();
            let rx = (0..n_hosts)
                .map(|i| sim.add_resource(&format!("{}-rx{i}", params.name)))
                .collect();
            (None, tx, rx)
        };
        Fabric {
            params,
            wire,
            tx,
            rx,
            n_hosts,
        }
    }

    /// The link parameters in effect.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Number of hosts attached.
    pub fn host_count(&self) -> usize {
        self.n_hosts
    }

    /// Splits `bytes` into fragment payload sizes (network MTU granularity).
    pub fn fragment_sizes(&self, bytes: u64) -> Vec<u64> {
        self.params.fragment_sizes(bytes)
    }

    /// The network stages one fragment of `frag_bytes` traverses from
    /// `src_host` to `dst_host`.
    ///
    /// Shared medium: occupy the wire, then propagate.
    /// Switched: occupy the source port, propagate, occupy the destination
    /// port (ejection); many-to-one traffic thus contends at the receiver,
    /// which is how switched-network incast behaves.
    ///
    /// # Panics
    ///
    /// Panics if a host index is out of range, or if `src_host == dst_host`
    /// (processes on the same host exchange through memory, which is the
    /// tool layer's job to price).
    pub fn fragment_stages(&self, src_host: usize, dst_host: usize, frag_bytes: u64) -> Vec<Stage> {
        assert!(src_host < self.n_hosts, "src host {src_host} out of range");
        assert!(dst_host < self.n_hosts, "dst host {dst_host} out of range");
        assert_ne!(
            src_host, dst_host,
            "fabric does not route host-local messages"
        );
        let wire_time = self.params.wire_time(frag_bytes);
        match self.wire {
            Some(wire) => vec![
                Stage::Serve {
                    resource: wire,
                    service: wire_time,
                },
                Stage::Latency(self.params.latency),
            ],
            None => vec![
                Stage::Serve {
                    resource: self.tx[src_host],
                    service: wire_time,
                },
                Stage::Latency(self.params.latency),
                Stage::Serve {
                    resource: self.rx[dst_host],
                    service: wire_time,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::net::NetworkKind;

    #[test]
    fn ethernet_builds_one_wire() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, NetworkKind::Ethernet.params(), 4);
        assert!(f.wire.is_some());
        assert!(f.tx.is_empty());
        let stages = f.fragment_stages(0, 1, 1000);
        assert_eq!(stages.len(), 2);
    }

    #[test]
    fn switched_builds_ports_per_host() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, NetworkKind::AtmLan.params(), 4);
        assert!(f.wire.is_none());
        assert_eq!(f.tx.len(), 4);
        assert_eq!(f.rx.len(), 4);
        let stages = f.fragment_stages(2, 3, 1000);
        assert_eq!(stages.len(), 3);
    }

    #[test]
    fn distinct_hosts_use_distinct_ports() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, NetworkKind::Fddi.params(), 3);
        let s01 = f.fragment_stages(0, 1, 100);
        let s21 = f.fragment_stages(2, 1, 100);
        // Different tx ports, same rx port.
        match (&s01[0], &s21[0]) {
            (Stage::Serve { resource: a, .. }, Stage::Serve { resource: b, .. }) => {
                assert_ne!(a, b)
            }
            _ => panic!("expected serve stages"),
        }
        match (&s01[2], &s21[2]) {
            (Stage::Serve { resource: a, .. }, Stage::Serve { resource: b, .. }) => {
                assert_eq!(a, b)
            }
            _ => panic!("expected serve stages"),
        }
    }

    #[test]
    #[should_panic(expected = "host-local")]
    fn local_routing_is_rejected() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, NetworkKind::Fddi.params(), 2);
        let _ = f.fragment_stages(1, 1, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_host_is_rejected() {
        let mut sim = Simulation::new();
        let f = Fabric::build(&mut sim, NetworkKind::Fddi.params(), 2);
        let _ = f.fragment_stages(0, 5, 100);
    }
}
