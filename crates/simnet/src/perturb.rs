//! Seeded perturbation and fault-injection models.
//!
//! A [`PerturbSpec`] declares *how* a run deviates from the clean,
//! failure-free model: latency jitter and background congestion on the
//! links, per-group compute stragglers, probabilistic message loss
//! (priced as timeout + retransmit), and a rank-crash-at-time fault.
//! Specs are pure data — declared in `.spec` files as `[perturb <name>]`
//! stanzas, registered process-globally, and addressed by cheap copyable
//! [`PerturbId`] handles, exactly mirroring the platform registry in
//! [`crate::registry`].
//!
//! Randomness is *deterministic and replayable*: a [`PerturbConfig`]
//! pairs a spec with a `u32` seed, and every rank derives its own
//! [`SplitMix64`] stream from `(seed, rank)` — independent of event
//! interleaving — so the same `(spec, seed)` pair reproduces the same
//! perturbed run bit-for-bit, serial or parallel, warm harness or cold.
//! Without a config no stream is ever drawn, so the clean path stays
//! byte-identical to the unperturbed model.

use crate::time::SimTime;
use std::sync::{Arc, OnceLock, RwLock};

/// Retransmit attempts priced for one fragment before the model gives up
/// and delivers anyway. Bounds the work a pathological loss rate can
/// inject while keeping every draw deterministic.
pub const MAX_RETRANSMITS: u32 = 8;

// ---------------------------------------------------------------------------
// Deterministic PRNG
// ---------------------------------------------------------------------------

/// A SplitMix64 pseudo-random generator (Steele, Lea & Flood's
/// `splitmix64` finalizer), hand-rolled so the simulator stays free of
/// external crates. Cheap, full-period over `u64`, and good enough for
/// perturbation draws — cryptographic strength is a non-goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform draw in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The per-rank perturbation stream for `(seed, rank)`.
///
/// Each rank draws from its own stream, seeded from the campaign seed and
/// the rank index only — never from scheduling order — so perturbed runs
/// replay bit-identically regardless of event interleaving or how many
/// runner threads execute the sweep.
pub fn rank_stream(seed: u32, rank: usize) -> SplitMix64 {
    // Decorrelate nearby (seed, rank) pairs through one mixing round.
    let mut mixer = SplitMix64::new((seed as u64) << 32 | 0xA5A5_5A5A);
    let a = mixer.next_u64();
    SplitMix64::new(a ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// ---------------------------------------------------------------------------
// Perturbation spec
// ---------------------------------------------------------------------------

/// A declared perturbation model: how much jitter, congestion, straggling,
/// loss and crashing to inject into a run.
///
/// All knobs default to "off"; a default-shaped spec perturbs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbSpec {
    /// Stable lower-case identifier (letters, digits, dashes). The slug
    /// `none` is reserved: campaigns use it to name the clean variant.
    pub slug: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// Per-fragment latency jitter: each fragment gains an extra delay
    /// uniform in `[0, jitter * link_latency)`. Zero disables.
    pub jitter: f64,
    /// Background congestion: each fragment's network stage durations are
    /// scaled by a factor uniform in `[1, 1 + congestion)`. Zero disables.
    pub congestion: f64,
    /// Per-group compute slowdown `(group name, factor >= 1)`: every rank
    /// placed in a matching host group runs its compute and software
    /// overheads `factor` times slower.
    pub stragglers: Vec<(String, f64)>,
    /// Per-fragment loss probability in `[0, 1)`: each lost attempt is
    /// priced as a full (wasted) traversal plus a retransmit timeout, up
    /// to [`MAX_RETRANSMITS`] attempts. Zero disables.
    pub loss: f64,
    /// Retransmit timeout in microseconds charged per lost attempt.
    /// Required (> 0) when `loss` is nonzero.
    pub loss_timeout_us: f64,
    /// Rank to crash, if any. Must be paired with `crash_at_us`.
    pub crash_rank: Option<usize>,
    /// Virtual time (microseconds) after which the crashing rank fails at
    /// its next simulator interaction. Must be paired with `crash_rank`.
    pub crash_at_us: Option<f64>,
}

impl PerturbSpec {
    /// A named spec with every knob off (useful as a builder base).
    pub fn quiet(slug: impl Into<String>) -> PerturbSpec {
        PerturbSpec {
            slug: slug.into(),
            title: None,
            jitter: 0.0,
            congestion: 0.0,
            stragglers: Vec::new(),
            loss: 0.0,
            loss_timeout_us: 0.0,
            crash_rank: None,
            crash_at_us: None,
        }
    }

    /// Whether the spec has a crash fault configured.
    pub fn has_crash(&self) -> bool {
        self.crash_rank.is_some()
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let slug_ok = !self.slug.is_empty()
            && self
                .slug
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if !slug_ok {
            return Err(format!(
                "perturb slug '{}' must be non-empty lower-case letters, digits or dashes",
                self.slug
            ));
        }
        if self.slug == "none" {
            return Err("perturb slug 'none' is reserved for the clean variant".to_string());
        }
        if !self.jitter.is_finite() || self.jitter < 0.0 {
            return Err(format!(
                "perturb '{}': jitter must be a finite value >= 0, got {}",
                self.slug, self.jitter
            ));
        }
        if !self.congestion.is_finite() || self.congestion < 0.0 {
            return Err(format!(
                "perturb '{}': congestion must be a finite value >= 0, got {}",
                self.slug, self.congestion
            ));
        }
        for (group, factor) in &self.stragglers {
            if group.is_empty() || group.contains('=') || group.contains(char::is_whitespace) {
                return Err(format!(
                    "perturb '{}': straggler group name '{group}' is invalid",
                    self.slug
                ));
            }
            if !factor.is_finite() || *factor < 1.0 {
                return Err(format!(
                    "perturb '{}': straggler factor for group '{group}' must be a finite \
                     value >= 1, got {factor}",
                    self.slug
                ));
            }
        }
        for (i, (group, _)) in self.stragglers.iter().enumerate() {
            if self.stragglers[..i].iter().any(|(g, _)| g == group) {
                return Err(format!(
                    "perturb '{}': straggler names group '{group}' twice",
                    self.slug
                ));
            }
        }
        if !self.loss.is_finite() || !(0.0..1.0).contains(&self.loss) {
            return Err(format!(
                "perturb '{}': loss must be a probability in [0, 1), got {}",
                self.slug, self.loss
            ));
        }
        if !self.loss_timeout_us.is_finite() || self.loss_timeout_us < 0.0 {
            return Err(format!(
                "perturb '{}': loss.timeout_us must be a finite value >= 0, got {}",
                self.slug, self.loss_timeout_us
            ));
        }
        if self.loss > 0.0 && self.loss_timeout_us == 0.0 {
            return Err(format!(
                "perturb '{}': loss needs loss.timeout_us > 0 (the retransmit price)",
                self.slug
            ));
        }
        match (self.crash_rank, self.crash_at_us) {
            (None, None) => {}
            (Some(_), Some(at)) => {
                if !at.is_finite() || at < 0.0 {
                    return Err(format!(
                        "perturb '{}': crash.at_us must be a finite value >= 0, got {at}",
                        self.slug
                    ));
                }
            }
            _ => {
                return Err(format!(
                    "perturb '{}': crash.rank and crash.at_us must be set together",
                    self.slug
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Seeded configuration
// ---------------------------------------------------------------------------

/// One concrete perturbed run: a spec plus the seed that fixes every
/// random draw. Two runs with the same config replay bit-identically.
#[derive(Debug, Clone)]
pub struct PerturbConfig {
    /// The perturbation model.
    pub spec: Arc<PerturbSpec>,
    /// The seed selecting this run's draw sequence.
    pub seed: u32,
}

impl PerturbConfig {
    /// The perturbation stream for `rank` under this config.
    pub fn rank_stream(&self, rank: usize) -> SplitMix64 {
        rank_stream(self.seed, rank)
    }

    /// The compute slowdown factor for a rank placed in `group` (1.0 when
    /// the group is not named a straggler).
    pub fn straggler_factor(&self, group: &str) -> f64 {
        self.spec
            .stragglers
            .iter()
            .find(|(g, _)| g == group)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }

    /// The virtual time after which `rank` crashes, if this config crashes
    /// that rank.
    pub fn crash_point(&self, rank: usize) -> Option<SimTime> {
        match (self.spec.crash_rank, self.spec.crash_at_us) {
            (Some(r), Some(at)) if r == rank => {
                Some(SimTime::ZERO + crate::time::SimDuration::from_micros_f64(at))
            }
            _ => None,
        }
    }
}

/// The unwind payload a crash-injected process terminates with. The
/// engine recognizes it and reports [`crate::error::SimError::InjectedCrash`]
/// instead of a generic process panic.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCrash {
    /// Virtual time at which the rank crashed.
    pub at: SimTime,
}

// ---------------------------------------------------------------------------
// Process-global registry
// ---------------------------------------------------------------------------

/// A cheap copyable handle to a registered [`PerturbSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PerturbId(u32);

impl PerturbId {
    /// The handle's index into the registry table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a registry index.
    pub fn from_index(i: usize) -> PerturbId {
        PerturbId(i as u32)
    }

    /// Resolves the handle to its spec.
    pub fn spec(self) -> Arc<PerturbSpec> {
        perturb_spec(self)
    }

    /// The spec's stable slug.
    pub fn slug(self) -> String {
        perturb_spec(self).slug.clone()
    }
}

/// There are no built-in perturbations: the clean model is the default,
/// and every perturbation is an explicit user declaration.
static PERTURBS: OnceLock<RwLock<Vec<Arc<PerturbSpec>>>> = OnceLock::new();

fn table() -> &'static RwLock<Vec<Arc<PerturbSpec>>> {
    PERTURBS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Resolves a handle to its spec.
///
/// # Panics
///
/// Panics if the handle was not issued by this registry (impossible for
/// handles obtained through [`register_perturb`]).
pub fn perturb_spec(id: PerturbId) -> Arc<PerturbSpec> {
    table()
        .read()
        .expect("perturb registry poisoned")
        .get(id.index())
        .cloned()
        .unwrap_or_else(|| panic!("PerturbId({}) is not registered", id.index()))
}

/// Registers a perturbation spec and returns its handle.
///
/// Registering a spec whose slug is already taken returns the existing
/// handle if the specs are identical (idempotent re-registration, e.g. a
/// spec file loaded twice) and an error if they differ.
///
/// # Errors
///
/// Returns a description of the conflict or validation failure.
pub fn register_perturb(spec: PerturbSpec) -> Result<PerturbId, String> {
    spec.validate()?;
    let mut t = table().write().expect("perturb registry poisoned");
    if let Some((i, existing)) = t.iter().enumerate().find(|(_, p)| p.slug == spec.slug) {
        return if **existing == spec {
            Ok(PerturbId::from_index(i))
        } else {
            Err(format!(
                "perturb slug '{}' is already registered with a different spec",
                spec.slug
            ))
        };
    }
    t.push(Arc::new(spec));
    Ok(PerturbId::from_index(t.len() - 1))
}

/// All registered perturbations, in registration order.
pub fn all_perturbs() -> Vec<PerturbId> {
    let n = table().read().expect("perturb registry poisoned").len();
    (0..n).map(PerturbId::from_index).collect()
}

/// Looks a perturbation up by its stable slug.
pub fn find_perturb(slug: &str) -> Option<PerturbId> {
    table()
        .read()
        .expect("perturb registry poisoned")
        .iter()
        .position(|p| p.slug == slug)
        .map(PerturbId::from_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = SplitMix64::new(43);
        assert_ne!(seq_a[0], c.next_u64());
        // Unit draws stay in [0, 1).
        let mut r = rank_stream(7, 3);
        for _ in 0..1000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u), "draw {u} out of range");
        }
        // Per-rank streams differ but replay per (seed, rank).
        let s1: Vec<u64> = {
            let mut r = rank_stream(1, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let s2: Vec<u64> = {
            let mut r = rank_stream(1, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let s1b: Vec<u64> = {
            let mut r = rank_stream(1, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(s1, s2);
        assert_eq!(s1, s1b);
    }

    #[test]
    fn validation_covers_the_failure_modes() {
        assert!(PerturbSpec::quiet("ok-slug").validate().is_ok());
        let cases: Vec<(PerturbSpec, &str)> = vec![
            (PerturbSpec::quiet("Bad Slug"), "slug"),
            (PerturbSpec::quiet("none"), "reserved"),
            (
                PerturbSpec {
                    jitter: -0.5,
                    ..PerturbSpec::quiet("j")
                },
                "jitter",
            ),
            (
                PerturbSpec {
                    congestion: f64::NAN,
                    ..PerturbSpec::quiet("c")
                },
                "congestion",
            ),
            (
                PerturbSpec {
                    stragglers: vec![("slow".into(), 0.5)],
                    ..PerturbSpec::quiet("s")
                },
                "straggler factor",
            ),
            (
                PerturbSpec {
                    stragglers: vec![("a".into(), 2.0), ("a".into(), 3.0)],
                    ..PerturbSpec::quiet("s2")
                },
                "twice",
            ),
            (
                PerturbSpec {
                    loss: 1.0,
                    loss_timeout_us: 10.0,
                    ..PerturbSpec::quiet("l")
                },
                "probability",
            ),
            (
                PerturbSpec {
                    loss: 0.1,
                    ..PerturbSpec::quiet("l2")
                },
                "timeout",
            ),
            (
                PerturbSpec {
                    crash_rank: Some(1),
                    ..PerturbSpec::quiet("cr")
                },
                "together",
            ),
            (
                PerturbSpec {
                    crash_rank: Some(1),
                    crash_at_us: Some(-2.0),
                    ..PerturbSpec::quiet("cr2")
                },
                "crash.at_us",
            ),
        ];
        for (spec, needle) in cases {
            let err = spec.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }

    #[test]
    fn registration_is_idempotent_and_conflict_checked() {
        let spec = PerturbSpec {
            jitter: 0.25,
            ..PerturbSpec::quiet("reg-test-jitter")
        };
        let id = register_perturb(spec.clone()).unwrap();
        assert_eq!(register_perturb(spec.clone()).unwrap(), id);
        assert_eq!(find_perturb("reg-test-jitter"), Some(id));
        assert_eq!(id.slug(), "reg-test-jitter");
        let err = register_perturb(PerturbSpec {
            jitter: 0.5,
            ..spec
        })
        .unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        assert!(register_perturb(PerturbSpec::quiet("none")).is_err());
        assert!(all_perturbs().contains(&id));
        assert_eq!(find_perturb("no-such-perturb"), None);
    }

    #[test]
    fn config_resolves_stragglers_and_crash_points() {
        let cfg = PerturbConfig {
            spec: Arc::new(PerturbSpec {
                stragglers: vec![("slow".into(), 2.5)],
                crash_rank: Some(2),
                crash_at_us: Some(150.0),
                ..PerturbSpec::quiet("cfg-test")
            }),
            seed: 9,
        };
        assert_eq!(cfg.straggler_factor("slow"), 2.5);
        assert_eq!(cfg.straggler_factor("fast"), 1.0);
        assert_eq!(cfg.crash_point(2), Some(SimTime::from_nanos(150_000)));
        assert_eq!(cfg.crash_point(0), None);
    }
}
