//! Shared helpers for the application suite: deterministic RNG, checksums,
//! and tool-portable reductions.
//!
//! The reductions matter for fidelity: p4 and Express applications use the
//! tools' built-in global operations, but PVM has none (paper Table 1), so
//! real PVM applications hand-rolled gathers — and so do ours.

use bytes::Bytes;
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::ids::Tag;
use pdceval_simnet::work::Work;

/// SplitMix64 step: deterministic, high-quality 64-bit mixing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless hash of an index — lets every rank generate the same global
/// sample stream without communication (deterministic across partitions).
pub fn hash64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Maps a 64-bit hash to a float in `[0, 1)`.
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a checksum of a byte slice (stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a over the little-endian bit patterns of `f64`s.
pub fn fnv1a_f64(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Tool-portable global `f64` vector sum: uses the tool's reduction where
/// it exists (p4 `p4_global_op`, Express `excombine`); for PVM, hand-rolls
/// a gather-to-rank-0 plus `pvm_mcast` of the result, exactly as 1995 PVM
/// applications had to.
pub fn portable_sum_f64(node: &mut Node<'_>, xs: &[f64], tag: Tag) -> Vec<f64> {
    match node.global_sum_f64(xs) {
        Ok(v) => v,
        Err(_) => hand_rolled_sum_f64(node, xs, tag),
    }
}

fn hand_rolled_sum_f64(node: &mut Node<'_>, xs: &[f64], tag: Tag) -> Vec<f64> {
    let p = node.nprocs();
    let me = node.rank();
    if p == 1 {
        return xs.to_vec();
    }
    if me == 0 {
        let mut acc = xs.to_vec();
        for _ in 1..p {
            let msg = node.recv(None, Some(tag)).expect("gather recv failed");
            let v = MsgReader::new(msg.data)
                .get_f64_slice()
                .expect("gather decode failed");
            node.compute(Work::flops(acc.len() as u64));
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += *x;
            }
        }
        let mut w = MsgWriter::with_capacity(4 + acc.len() * 8);
        w.put_f64_slice(&acc);
        node.broadcast(0, w.freeze()).expect("result mcast failed");
        acc
    } else {
        let mut w = MsgWriter::with_capacity(4 + xs.len() * 8);
        w.put_f64_slice(xs);
        node.send(0, tag, w.freeze()).expect("gather send failed");
        let data = node
            .broadcast(0, Bytes::new())
            .expect("result mcast failed");
        MsgReader::new(data)
            .get_f64_slice()
            .expect("result decode failed")
    }
}

/// Tool-portable global `i32` vector sum; see [`portable_sum_f64`].
pub fn portable_sum_i32(node: &mut Node<'_>, xs: &[i32], tag: Tag) -> Vec<i32> {
    match node.global_sum_i32(xs) {
        Ok(v) => v,
        Err(_) => {
            let p = node.nprocs();
            let me = node.rank();
            if p == 1 {
                return xs.to_vec();
            }
            if me == 0 {
                let mut acc = xs.to_vec();
                for _ in 1..p {
                    let msg = node.recv(None, Some(tag)).expect("gather recv failed");
                    let v = MsgReader::new(msg.data)
                        .get_i32_slice()
                        .expect("gather decode failed");
                    node.compute(Work::int_ops(acc.len() as u64));
                    for (a, x) in acc.iter_mut().zip(&v) {
                        *a = a.wrapping_add(*x);
                    }
                }
                let mut w = MsgWriter::with_capacity(4 + acc.len() * 4);
                w.put_i32_slice(&acc);
                node.broadcast(0, w.freeze()).expect("result mcast failed");
                acc
            } else {
                let mut w = MsgWriter::with_capacity(4 + xs.len() * 4);
                w.put_i32_slice(xs);
                node.send(0, tag, w.freeze()).expect("gather send failed");
                let data = node
                    .broadcast(0, Bytes::new())
                    .expect("result mcast failed");
                MsgReader::new(data)
                    .get_i32_slice()
                    .expect("result decode failed")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn hash64_differs_by_index() {
        assert_ne!(hash64(0), hash64(1));
        assert_ne!(hash64(1), hash64(2));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000 {
            let u = unit_f64(hash64(i));
            assert!((0.0..1.0).contains(&u), "out of range: {u}");
        }
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn fnv_f64_sensitive_to_bits() {
        assert_ne!(fnv1a_f64(&[1.0]), fnv1a_f64(&[-1.0]));
        assert_eq!(fnv1a_f64(&[1.0, 2.0]), fnv1a_f64(&[1.0, 2.0]));
    }

    #[test]
    fn portable_sums_agree_across_tools() {
        use pdceval_mpt::runtime::{run_spmd, SpmdConfig};
        use pdceval_mpt::ToolKind;
        use pdceval_simnet::platform::Platform;

        let mut expected: Option<Vec<f64>> = None;
        for tool in ToolKind::all() {
            let cfg = SpmdConfig::new(Platform::SUN_ATM_LAN, tool, 4);
            let out = run_spmd(&cfg, |node| {
                let mine = vec![node.rank() as f64 + 1.0, 10.0];
                portable_sum_f64(node, &mine, 77)
            })
            .unwrap();
            for r in &out.results {
                assert_eq!(r, &vec![10.0, 40.0], "{tool}");
            }
            match &expected {
                None => expected = Some(out.results[0].clone()),
                Some(e) => assert_eq!(e, &out.results[0]),
            }
        }
    }
}
