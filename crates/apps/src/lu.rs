//! LU decomposition (Table 2, numerical class).
//!
//! Gaussian elimination without pivoting on a diagonally-dominant matrix,
//! rows distributed cyclically; at each step the owner broadcasts the
//! pivot row. A classic fine-grained-broadcast workload.

use crate::util::{fnv1a_f64, hash64, unit_f64};
use crate::workload::Workload;
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_GATHER: u32 = 150;

/// LU decomposition workload: an `n x n` diagonally dominant matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuDecomposition {
    /// Matrix dimension.
    pub n: usize,
    /// Seed for the synthetic matrix.
    pub seed: u64,
}

impl LuDecomposition {
    /// A representative workload size.
    pub fn paper() -> LuDecomposition {
        LuDecomposition { n: 128, seed: 33 }
    }

    /// A small configuration for fast tests.
    pub fn small() -> LuDecomposition {
        LuDecomposition { n: 16, seed: 33 }
    }

    /// Generates the matrix (diagonally dominant so elimination without
    /// pivoting is numerically safe).
    pub fn generate(&self) -> Vec<f64> {
        let n = self.n;
        let mut m: Vec<f64> = (0..n * n)
            .map(|i| unit_f64(hash64(self.seed.wrapping_add(i as u64))) - 0.5)
            .collect();
        for i in 0..n {
            m[i * n + i] = n as f64 + unit_f64(hash64(self.seed ^ i as u64));
        }
        m
    }
}

/// Sequential in-place LU (Doolittle, L below diagonal, U on/above).
pub fn lu_sequential(m: &mut [f64], n: usize) {
    for k in 0..n {
        let pivot = m[k * n + k];
        for i in k + 1..n {
            let factor = m[i * n + k] / pivot;
            m[i * n + k] = factor;
            for j in k + 1..n {
                m[i * n + j] -= factor * m[k * n + j];
            }
        }
    }
}

/// Output: checksum of the packed LU factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuOutput {
    /// FNV-1a over the factored matrix.
    pub checksum: u64,
}

impl Workload for LuDecomposition {
    type Output = LuOutput;

    fn name(&self) -> &'static str {
        "LU Decomposition"
    }

    fn sequential(&self) -> LuOutput {
        let mut m = self.generate();
        lu_sequential(&mut m, self.n);
        LuOutput {
            checksum: fnv1a_f64(&m),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> LuOutput {
        node.advise_direct_route();
        let n = self.n;
        let p = node.nprocs();
        let me = node.rank();

        // Cyclic row distribution: row i belongs to rank i % p.
        let full = self.generate();
        let mut my_rows: Vec<(usize, Vec<f64>)> = (0..n)
            .filter(|i| i % p == me)
            .map(|i| (i, full[i * n..(i + 1) * n].to_vec()))
            .collect();

        for k in 0..n {
            let owner = k % p;
            // Owner broadcasts the pivot row's trailing part.
            let pivot_row: Vec<f64> = if owner == me {
                let row = &my_rows.iter().find(|(i, _)| *i == k).expect("own row").1;
                let mut w = MsgWriter::with_capacity(4 + (n - k) * 8);
                w.put_f64_slice(&row[k..]);
                let data = node.broadcast(owner, w.freeze()).expect("pivot bcast");
                MsgReader::new(data).get_f64_slice().expect("pivot decode")
            } else {
                let data = node
                    .broadcast(owner, bytes::Bytes::new())
                    .expect("pivot bcast");
                MsgReader::new(data).get_f64_slice().expect("pivot decode")
            };
            let pivot = pivot_row[0];
            // Eliminate in my rows below k.
            let mut updates = 0u64;
            for (i, row) in my_rows.iter_mut() {
                if *i > k {
                    let factor = row[k] / pivot;
                    row[k] = factor;
                    for (j, pv) in (k + 1..n).zip(&pivot_row[1..]) {
                        row[j] -= factor * pv;
                    }
                    updates += (n - k) as u64;
                }
            }
            node.compute(Work::flops(2 * updates + 8));
        }

        // Gather the factored rows at rank 0 and broadcast the checksum.
        if me == 0 {
            let mut m = vec![0.0f64; n * n];
            for (i, row) in &my_rows {
                m[i * n..(i + 1) * n].copy_from_slice(row);
            }
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_GATHER)).expect("LU gather");
                let mut r = MsgReader::new(msg.data);
                let count = r.get_u32().expect("count") as usize;
                for _ in 0..count {
                    let i = r.get_u32().expect("row idx") as usize;
                    let row = r.get_f64_slice().expect("row");
                    m[i * n..(i + 1) * n].copy_from_slice(&row);
                }
            }
            let h = fnv1a_f64(&m);
            let mut w = MsgWriter::new();
            w.put_u64(h);
            node.broadcast(0, w.freeze()).expect("sum bcast");
            LuOutput { checksum: h }
        } else {
            let mut w = MsgWriter::new();
            w.put_u32(my_rows.len() as u32);
            for (i, row) in &my_rows {
                w.put_u32(*i as u32);
                w.put_f64_slice(row);
            }
            node.send(0, TAG_GATHER, w.freeze()).expect("LU send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("sum bcast");
            LuOutput {
                checksum: MsgReader::new(data).get_u64().expect("sum decode"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn lu_factors_reconstruct_matrix() {
        let w = LuDecomposition::small();
        let original = w.generate();
        let mut m = original.clone();
        lu_sequential(&mut m, w.n);
        let n = w.n;
        // Verify A = L * U at a few positions.
        for &(r, c) in &[(0, 0), (3, 7), (9, 2), (15, 15)] {
            let mut acc = 0.0;
            for k in 0..n {
                let l = if k < r {
                    m[r * n + k]
                } else if k == r {
                    1.0
                } else {
                    0.0
                };
                let u = if k <= c { m[k * n + c] } else { 0.0 };
                acc += l * u;
            }
            assert!(
                (acc - original[r * n + c]).abs() < 1e-9,
                "A[{r}][{c}]: {acc} vs {}",
                original[r * n + c]
            );
        }
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = LuDecomposition::small();
        let expect = w.sequential();
        for tool in [ToolKind::P4, ToolKind::EXPRESS] {
            for procs in [1, 2, 4] {
                let out =
                    run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs)).unwrap();
                assert_eq!(out.results[0], expect, "{tool} x{procs}");
            }
        }
    }
}
