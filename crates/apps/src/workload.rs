//! The workload abstraction: applications written once, runnable under
//! every tool and platform, with a sequential reference for correctness.

use pdceval_mpt::error::RunError;
use pdceval_mpt::node::Node;
use pdceval_mpt::runtime::{run_spmd, SpmdConfig};
use pdceval_simnet::time::SimDuration;

/// A distributed application from the SU PDABS suite.
///
/// Implementations perform *real* computation (real DCTs, FFT butterflies,
/// comparisons) and charge analytic [`pdceval_simnet::work::Work`] so the
/// simulated clock advances deterministically.
pub trait Workload: Clone + Send + Sync + 'static {
    /// The value each rank produces (host-node workloads return the
    /// interesting value from rank 0).
    type Output: Send + std::fmt::Debug + 'static;

    /// Display name, matching the paper's Table 2 terminology.
    fn name(&self) -> &'static str;

    /// The distributed implementation, executed by every rank.
    fn run(&self, node: &mut Node<'_>) -> Self::Output;

    /// A sequential reference implementation used to verify correctness.
    fn sequential(&self) -> Self::Output;
}

/// Results of one workload execution.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome<T> {
    /// Simulated wall time from start to the last rank's completion —
    /// the "execution time" of the paper's Figures 5-8.
    pub elapsed: SimDuration,
    /// Per-rank outputs, indexed by rank.
    pub results: Vec<T>,
}

/// Runs a workload on a simulated cluster.
///
/// # Errors
///
/// Returns [`RunError`] if the tool/platform combination is unsupported
/// or the simulation fails (deadlock, rank panic).
pub fn run_workload<W: Workload>(
    w: &W,
    cfg: &SpmdConfig,
) -> Result<WorkloadOutcome<W::Output>, RunError> {
    let w = w.clone();
    let out = run_spmd(cfg, move |node| w.run(node))?;
    Ok(WorkloadOutcome {
        elapsed: out.elapsed,
        results: out.results,
    })
}

/// The contiguous block of `n` items owned by rank `r` of `p`
/// (balanced partition: the first `n % p` ranks get one extra item).
pub fn block_range(n: usize, p: usize, r: usize) -> std::ops::Range<usize> {
    assert!(
        p > 0 && r < p,
        "invalid partition request: n={n} p={p} r={r}"
    );
    let base = n / p;
    let rem = n % p;
    let start = r * base + r.min(rem);
    let len = base + usize::from(r < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 100] {
            for p in 1..=8 {
                let mut total = 0;
                let mut next = 0;
                for r in 0..p {
                    let range = block_range(n, p, r);
                    assert_eq!(range.start, next, "gap at rank {r}");
                    next = range.end;
                    total += range.len();
                }
                assert_eq!(total, n);
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        for r in 0..3 {
            let len = block_range(10, 3, r).len();
            assert!(len == 3 || len == 4);
        }
    }

    #[test]
    #[should_panic(expected = "invalid partition")]
    fn zero_parts_rejected() {
        let _ = block_range(10, 0, 0);
    }
}
