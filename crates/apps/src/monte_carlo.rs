//! Monte Carlo integration (paper §3.3 application 3).
//!
//! Estimates a definite integral by averaging the integrand at random
//! sample points. Compute-intensive with only a tiny final combine —
//! exactly the latency-bound application class the paper uses it to
//! represent ("this can benchmark the computing capacity of platforms and
//! latency impact of different tool implementations").
//!
//! Samples are indexed globally and hashed statelessly, so every
//! partitioning evaluates the identical sample set: estimates agree
//! across tools and processor counts up to floating-point summation
//! order.

use crate::util::{hash64, portable_sum_f64, unit_f64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_COMBINE: u32 = 120;

/// Analytic work per sample: stateless RNG hash plus integrand
/// evaluation on a 1995 FPU.
const FLOPS_PER_SAMPLE: u64 = 38;

/// Monte Carlo integration workload: estimates
/// `∫₀¹ 4 / (1 + x²) dx = π`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Total number of samples across all ranks.
    pub samples: u64,
    /// Seed mixed into every sample hash.
    pub seed: u64,
}

impl MonteCarlo {
    /// The paper-scale workload: one million samples.
    pub fn paper() -> MonteCarlo {
        MonteCarlo {
            samples: 1_000_000,
            seed: 77,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> MonteCarlo {
        MonteCarlo {
            samples: 20_000,
            seed: 77,
        }
    }

    /// The integrand.
    fn f(x: f64) -> f64 {
        4.0 / (1.0 + x * x)
    }

    /// Evaluates the sample with global index `i`.
    fn sample(&self, i: u64) -> f64 {
        let x = unit_f64(hash64(self.seed.wrapping_mul(0x5851_F42D).wrapping_add(i)));
        Self::f(x)
    }
}

/// Output of the Monte Carlo workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOutput {
    /// The integral estimate.
    pub estimate: f64,
    /// Number of samples actually evaluated.
    pub samples: u64,
}

impl Workload for MonteCarlo {
    type Output = MonteCarloOutput;

    fn name(&self) -> &'static str {
        "Monte Carlo Integration"
    }

    fn sequential(&self) -> MonteCarloOutput {
        let sum: f64 = (0..self.samples).map(|i| self.sample(i)).sum();
        MonteCarloOutput {
            estimate: sum / self.samples as f64,
            samples: self.samples,
        }
    }

    fn run(&self, node: &mut Node<'_>) -> MonteCarloOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let range = block_range(self.samples as usize, p, me);

        let local_sum: f64 = range.clone().map(|i| self.sample(i as u64)).sum();
        node.compute(Work::flops(FLOPS_PER_SAMPLE * range.len() as u64));

        // Tiny combine: the tools' global operation where it exists,
        // PVM's hand-rolled gather otherwise.
        let totals = portable_sum_f64(node, &[local_sum, range.len() as f64], TAG_COMBINE);
        MonteCarloOutput {
            estimate: totals[0] / totals[1],
            samples: totals[1] as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn sequential_estimate_approximates_pi() {
        let w = MonteCarlo {
            samples: 200_000,
            seed: 3,
        };
        let out = w.sequential();
        assert!(
            (out.estimate - std::f64::consts::PI).abs() < 0.02,
            "estimate {} too far from pi",
            out.estimate
        );
    }

    #[test]
    fn distributed_matches_sequential_for_all_tools() {
        let w = MonteCarlo::small();
        let expect = w.sequential();
        for tool in ToolKind::all() {
            for procs in [1, 3, 4] {
                let cfg = SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs);
                let out = run_workload(&w, &cfg).unwrap();
                for r in &out.results {
                    assert_eq!(r.samples, expect.samples, "{tool} x{procs}");
                    // Summation order differs across partitions; the
                    // estimate must agree to fp-reassociation tolerance.
                    assert!(
                        (r.estimate - expect.estimate).abs() < 1e-9,
                        "{tool} x{procs}: {} vs {}",
                        r.estimate,
                        expect.estimate
                    );
                }
            }
        }
    }

    #[test]
    fn scaling_is_nearly_linear_on_fast_networks() {
        // Compute-bound: Figure 5's Monte Carlo pane descends ~1/P.
        let w = MonteCarlo::paper();
        let t1 = run_workload(
            &w,
            &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::EXPRESS, 1),
        )
        .unwrap()
        .elapsed;
        let t8 = run_workload(
            &w,
            &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::EXPRESS, 8),
        )
        .unwrap()
        .elapsed;
        let speedup = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(speedup > 5.0, "speedup only {speedup:.2}");
    }

    #[test]
    fn express_wins_the_tiny_combine() {
        // Figure 5: Express is best at Monte Carlo — its excombine fast
        // path makes the (tiny) final reduction cheapest.
        let w = MonteCarlo::paper();
        let t = |tool| {
            run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, tool, 8))
                .unwrap()
                .elapsed
                .as_secs_f64()
        };
        let ex = t(ToolKind::EXPRESS);
        let p4 = t(ToolKind::P4);
        let pvm = t(ToolKind::PVM);
        assert!(ex < p4, "express {ex} !< p4 {p4}");
        assert!(ex < pvm, "express {ex} !< pvm {pvm}");
    }
}
