//! Distributed spell checker (Table 2, utilities class).
//!
//! The host broadcasts a dictionary, scatters text chunks on word
//! boundaries, and each node reports its misspelled-word count — the
//! paper's example of an everyday utility parallelized over a cluster.

use crate::util::{hash64, splitmix64};
use crate::workload::{block_range, Workload};
use bytes::Bytes;
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;
use std::collections::HashSet;

const TAG_TEXT: u32 = 250;
const TAG_MISSES: u32 = 251;

/// Spell-checking workload over synthetic text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpellCheck {
    /// Number of words in the document.
    pub words: usize,
    /// Dictionary size.
    pub dict_words: usize,
    /// Fraction (per 1000) of document words that are misspelled.
    pub typo_per_mille: u32,
    /// Seed.
    pub seed: u64,
}

impl SpellCheck {
    /// A representative workload size.
    pub fn paper() -> SpellCheck {
        SpellCheck {
            words: 200_000,
            dict_words: 20_000,
            typo_per_mille: 25,
            seed: 121,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> SpellCheck {
        SpellCheck {
            words: 2_000,
            dict_words: 500,
            typo_per_mille: 50,
            seed: 121,
        }
    }

    fn dict_word(&self, i: usize) -> String {
        format!("w{:x}", hash64(self.seed.wrapping_add(i as u64)) & 0xFFFFF)
    }

    /// The dictionary.
    pub fn dictionary(&self) -> Vec<String> {
        (0..self.dict_words).map(|i| self.dict_word(i)).collect()
    }

    /// The document: dictionary words with seeded typos sprinkled in.
    pub fn document(&self) -> Vec<String> {
        let mut state = self.seed ^ 0xD0C;
        (0..self.words)
            .map(|_| {
                let h = splitmix64(&mut state);
                if h % 1000 < self.typo_per_mille as u64 {
                    format!("x{:x}", h & 0xFFFFF) // not in the dictionary
                } else {
                    self.dict_word((h % self.dict_words as u64) as usize)
                }
            })
            .collect()
    }
}

/// Output: misspelled-word count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpellOutput {
    /// Words not found in the dictionary.
    pub misses: u64,
}

impl Workload for SpellCheck {
    type Output = SpellOutput;

    fn name(&self) -> &'static str {
        "Distributed Spell Checker"
    }

    fn sequential(&self) -> SpellOutput {
        let dict: HashSet<String> = self.dictionary().into_iter().collect();
        let misses = self
            .document()
            .iter()
            .filter(|w| !dict.contains(*w))
            .count() as u64;
        SpellOutput { misses }
    }

    fn run(&self, node: &mut Node<'_>) -> SpellOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();

        // Host broadcasts the dictionary (joined with '\n').
        let dict: HashSet<String> = if me == 0 {
            let words = self.dictionary();
            let blob = words.join("\n");
            node.broadcast(0, Bytes::from(blob.into_bytes()))
                .expect("dict bcast");
            words.into_iter().collect()
        } else {
            let data = node.broadcast(0, Bytes::new()).expect("dict bcast");
            std::str::from_utf8(&data)
                .expect("utf8 dictionary")
                .lines()
                .map(str::to_owned)
                .collect()
        };
        node.compute(Work::int_ops(self.dict_words as u64 * 4));

        // Host scatters document chunks on word boundaries.
        let my_words: Vec<String> = if me == 0 {
            let doc = self.document();
            for r in 1..p {
                let rr = block_range(self.words, p, r);
                let blob = doc[rr].join("\n");
                node.send(r, TAG_TEXT, Bytes::from(blob.into_bytes()))
                    .expect("text send");
            }
            let rr = block_range(self.words, p, 0);
            doc[rr].to_vec()
        } else {
            let data = node.recv(Some(0), Some(TAG_TEXT)).expect("text recv").data;
            std::str::from_utf8(&data)
                .expect("utf8 text")
                .lines()
                .map(str::to_owned)
                .collect()
        };

        let local = my_words.iter().filter(|w| !dict.contains(*w)).count() as u64;
        node.compute(Work::int_ops(my_words.len() as u64 * 6));

        if me == 0 {
            let mut total = local;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_MISSES)).expect("miss gather");
                total += MsgReader::new(msg.data).get_u64().expect("miss count");
            }
            let mut w = MsgWriter::new();
            w.put_u64(total);
            node.broadcast(0, w.freeze()).expect("miss bcast");
            SpellOutput { misses: total }
        } else {
            let mut w = MsgWriter::new();
            w.put_u64(local);
            node.send(0, TAG_MISSES, w.freeze()).expect("miss send");
            let data = node.broadcast(0, Bytes::new()).expect("miss bcast");
            SpellOutput {
                misses: MsgReader::new(data).get_u64().expect("miss count"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn typo_rate_is_roughly_honoured() {
        let w = SpellCheck::small();
        let out = w.sequential();
        let expected = (w.words as u64 * w.typo_per_mille as u64) / 1000;
        assert!(
            out.misses > expected / 2 && out.misses < expected * 2,
            "misses {} vs expected ~{expected}",
            out.misses
        );
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = SpellCheck::small();
        let expect = w.sequential();
        for procs in [1, 2, 5] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::EXPRESS, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }
}
