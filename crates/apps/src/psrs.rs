//! Parallel Sorting by Regular Sampling (paper §3.3 application 4).
//!
//! The classic PSRS algorithm: every node sorts its local block, regular
//! samples are gathered and sorted at rank 0, P-1 pivots are broadcast,
//! each node partitions its sorted block by the pivots and exchanges
//! partitions all-to-all, and finally merges what it received. "The
//! computation and communication requirements are data dependent", as the
//! paper notes.
//!
//! The exchange sends *partitions of a sorted array* — non-contiguous
//! slices from the sender's viewpoint once combined with companion data —
//! so the implementation uses [`Node::send_strided`]: PVM's typed packing
//! handles this natively while p4/Express pay a user-side gather pass,
//! which (together with PVM's direct-route large transfers) is why PVM
//! edges out p4 at sorting in Figure 5.

use crate::util::{fnv1a, hash64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_SAMPLES: u32 = 130;
const TAG_EXCHANGE: u32 = 132;

/// Analytic per-element work factors on a 1995 CPU.
fn sort_work(n: usize) -> Work {
    let n = n.max(2) as u64;
    let logn = 64 - (n - 1).leading_zeros() as u64;
    Work {
        flops: 0,
        int_ops: 6 * n * logn,
        bytes_moved: 8 * n,
    }
}

fn merge_work(n: usize, ways: usize) -> Work {
    let n = n as u64;
    let logk = (usize::BITS - ways.max(2).leading_zeros()) as u64;
    Work {
        flops: 0,
        int_ops: 4 * n * logk,
        bytes_moved: 8 * n,
    }
}

/// PSRS workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsrsSort {
    /// Total number of 32-bit keys.
    pub keys: usize,
    /// Seed for the synthetic key stream.
    pub seed: u64,
}

impl PsrsSort {
    /// The paper-scale workload: half a million keys.
    pub fn paper() -> PsrsSort {
        PsrsSort {
            keys: 500_000,
            seed: 11,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> PsrsSort {
        PsrsSort {
            keys: 4_000,
            seed: 11,
        }
    }

    /// Key with global index `i` (deterministic across partitionings).
    fn key(&self, i: usize) -> i32 {
        (hash64(self.seed.wrapping_mul(0xA24B).wrapping_add(i as u64)) & 0x7FFF_FFFF) as i32
    }
}

/// Output of the sorting workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortOutput {
    /// FNV-1a checksum over the concatenated sorted keys (little-endian).
    pub checksum: u64,
    /// Total number of keys sorted.
    pub total: u64,
}

fn checksum_keys(keys: &[i32]) -> u64 {
    let mut bytes = Vec::with_capacity(keys.len() * 4);
    for k in keys {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    fnv1a(&bytes)
}

impl Workload for PsrsSort {
    type Output = SortOutput;

    fn name(&self) -> &'static str {
        "Sorting by Regular Sampling"
    }

    fn sequential(&self) -> SortOutput {
        let mut keys: Vec<i32> = (0..self.keys).map(|i| self.key(i)).collect();
        keys.sort_unstable();
        SortOutput {
            checksum: checksum_keys(&keys),
            total: keys.len() as u64,
        }
    }

    fn run(&self, node: &mut Node<'_>) -> SortOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let range = block_range(self.keys, p, me);

        // Phase 1: local sort.
        let mut local: Vec<i32> = range.clone().map(|i| self.key(i)).collect();
        local.sort_unstable();
        node.compute(sort_work(local.len()));

        if p == 1 {
            return SortOutput {
                checksum: checksum_keys(&local),
                total: local.len() as u64,
            };
        }

        // Phase 2: regular sampling — gather P samples per node at rank 0.
        let mut samples = Vec::with_capacity(p);
        for j in 0..p {
            let idx = (j * local.len()) / p;
            samples.push(*local.get(idx).unwrap_or(&i32::MAX));
        }
        let pivots: Vec<i32> = if me == 0 {
            let mut all = samples;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_SAMPLES)).expect("sample gather");
                all.extend(
                    MsgReader::new(msg.data)
                        .get_i32_slice()
                        .expect("sample decode"),
                );
            }
            all.sort_unstable();
            node.compute(sort_work(all.len()));
            // P-1 pivots at regular positions.
            let pivots: Vec<i32> = (1..p).map(|j| all[j * p + p / 2 - 1]).collect();
            let mut w = MsgWriter::new();
            w.put_i32_slice(&pivots);
            node.broadcast(0, w.freeze()).expect("pivot bcast");
            pivots
        } else {
            let mut w = MsgWriter::new();
            w.put_i32_slice(&samples);
            node.send(0, TAG_SAMPLES, w.freeze()).expect("sample send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("pivot bcast");
            MsgReader::new(data).get_i32_slice().expect("pivot decode")
        };

        // Phase 3: partition by pivots and exchange all-to-all.
        let mut bounds = Vec::with_capacity(p + 1);
        bounds.push(0usize);
        for &piv in &pivots {
            bounds.push(local.partition_point(|&k| k <= piv));
        }
        bounds.push(local.len());
        node.compute(Work::int_ops((p as u64) * 32)); // binary searches

        let mut received: Vec<Vec<i32>> = Vec::with_capacity(p);
        for r in 0..p {
            if r == me {
                continue;
            }
            let part = &local[bounds[r]..bounds[r + 1]];
            let mut w = MsgWriter::with_capacity(4 + part.len() * 4);
            w.put_i32_slice(part);
            // Partitions are scattered slices of application data:
            // strided origin (4-byte elements).
            node.send_strided(r, TAG_EXCHANGE, w.freeze(), 4)
                .expect("exchange send");
        }
        received.push(local[bounds[me]..bounds[me + 1]].to_vec());
        for _ in 0..p - 1 {
            let msg = node.recv(None, Some(TAG_EXCHANGE)).expect("exchange recv");
            received.push(
                MsgReader::new(msg.data)
                    .get_i32_slice()
                    .expect("exchange decode"),
            );
        }

        // Phase 4: multiway merge of the received sorted runs.
        let total_len: usize = received.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total_len);
        let mut cursors = vec![0usize; received.len()];
        loop {
            let mut best: Option<(usize, i32)> = None;
            for (ri, run) in received.iter().enumerate() {
                if cursors[ri] < run.len() {
                    let v = run[cursors[ri]];
                    if best.is_none_or(|(_, bv)| v < bv) {
                        best = Some((ri, v));
                    }
                }
            }
            match best {
                Some((ri, v)) => {
                    cursors[ri] += 1;
                    merged.push(v);
                }
                None => break,
            }
        }
        node.compute(merge_work(merged.len(), received.len()));

        // Result collection: concatenate the globally-ordered partitions
        // at rank 0 (partition k holds keys <= partition k+1's keys).
        let local_sum = checksum_keys(&merged);
        let _ = local_sum;
        if me == 0 {
            let mut all = merged;
            let mut parts: Vec<Option<Vec<i32>>> = vec![None; p];
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_SAMPLES)).expect("collect");
                parts[msg.src] = Some(
                    MsgReader::new(msg.data)
                        .get_i32_slice()
                        .expect("collect decode"),
                );
            }
            for part in parts.into_iter().flatten() {
                all.extend(part);
            }
            let out = SortOutput {
                checksum: checksum_keys(&all),
                total: all.len() as u64,
            };
            let mut w = MsgWriter::new();
            w.put_u64(out.checksum);
            w.put_u64(out.total);
            node.broadcast(0, w.freeze()).expect("result bcast");
            out
        } else {
            let mut w = MsgWriter::with_capacity(4 + merged.len() * 4);
            w.put_i32_slice(&merged);
            node.send(0, TAG_SAMPLES, w.freeze()).expect("collect send");
            let data = node
                .broadcast(0, bytes::Bytes::new())
                .expect("result bcast");
            let mut r = MsgReader::new(data);
            SortOutput {
                checksum: r.get_u64().expect("checksum"),
                total: r.get_u64().expect("total"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn sequential_sorts_correctly() {
        let w = PsrsSort::small();
        let mut keys: Vec<i32> = (0..w.keys).map(|i| w.key(i)).collect();
        keys.sort_unstable();
        assert!(keys.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(w.sequential().total, w.keys as u64);
    }

    #[test]
    fn distributed_matches_sequential_for_all_tools() {
        let w = PsrsSort::small();
        let expect = w.sequential();
        for tool in ToolKind::all() {
            for procs in [1, 2, 4] {
                let cfg = SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs);
                let out = run_workload(&w, &cfg).unwrap();
                for r in &out.results {
                    assert_eq!(r, &expect, "{tool} x{procs}");
                }
            }
        }
    }

    #[test]
    fn pvm_edges_p4_at_paper_scale_on_fddi() {
        // Figure 5: PVM's strided-native packing wins the all-to-all
        // exchange of large partitions.
        let w = PsrsSort::paper();
        let t = |tool| {
            run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, tool, 8))
                .unwrap()
                .elapsed
                .as_secs_f64()
        };
        let pvm = t(ToolKind::PVM);
        let p4 = t(ToolKind::P4);
        let ex = t(ToolKind::EXPRESS);
        assert!(pvm < p4, "pvm {pvm} !< p4 {p4}");
        assert!(pvm < ex, "pvm {pvm} !< express {ex}");
    }
}
