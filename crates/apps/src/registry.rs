//! The SU PDABS catalog (paper Table 2): the parallel/distributed
//! application benchmark suite developed at NPAC, divided into four
//! classes.

use std::fmt;

/// The four application classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Numerical algorithms.
    Numerical,
    /// Signal and image processing.
    SignalImage,
    /// Simulation and optimization.
    SimulationOptimization,
    /// System utilities.
    Utilities,
}

impl AppClass {
    /// All classes in the paper's column order.
    pub fn all() -> [AppClass; 4] {
        [
            AppClass::Numerical,
            AppClass::SignalImage,
            AppClass::SimulationOptimization,
            AppClass::Utilities,
        ]
    }

    /// Display name matching Table 2's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            AppClass::Numerical => "Numerical Algorithms",
            AppClass::SignalImage => "Signal/Image Processing",
            AppClass::SimulationOptimization => "Simulation/Optimization",
            AppClass::Utilities => "Utilities",
        }
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One catalog entry of the suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppEntry {
    /// Application name as listed in Table 2.
    pub name: &'static str,
    /// The class column it appears under.
    pub class: AppClass,
    /// Whether the paper's §3.3 benchmarks it (JPEG, 2D-FFT, Monte Carlo,
    /// PSRS sorting).
    pub benchmarked: bool,
    /// The module implementing it in this crate, if implemented.
    pub module: Option<&'static str>,
}

/// The full Table 2 catalog.
pub fn catalog() -> Vec<AppEntry> {
    use AppClass::*;
    let e = |name, class, benchmarked, module| AppEntry {
        name,
        class,
        benchmarked,
        module,
    };
    vec![
        // Numerical algorithms.
        e("Fast Fourier Transform", Numerical, true, Some("fft")),
        e("LU Decomposition", Numerical, false, Some("lu")),
        e("Linear Equation Solver", Numerical, false, Some("solver")),
        e("Matrix Multiplication", Numerical, false, Some("matmul")),
        e("Cryptology", Numerical, false, Some("crypto")),
        // Signal / image processing.
        e("JPEG Compression", SignalImage, true, Some("jpeg")),
        e("Hough Transform", SignalImage, false, Some("hough")),
        e("Ray Tracing", SignalImage, false, Some("raytrace")),
        e("Data Compression", SignalImage, false, Some("compress")),
        // Simulation / optimization.
        e(
            "N-body Simulation",
            SimulationOptimization,
            false,
            Some("nbody"),
        ),
        e(
            "Monte Carlo Integration",
            SimulationOptimization,
            true,
            Some("monte_carlo"),
        ),
        e(
            "Traveling Salesman",
            SimulationOptimization,
            false,
            Some("tsp"),
        ),
        e(
            "Branch and Bound",
            SimulationOptimization,
            false,
            Some("knapsack"),
        ),
        // Utilities.
        e("ADA Compiler", Utilities, false, None),
        e("Parallel Sorting", Utilities, true, Some("psrs")),
        e("Parallel Search", Utilities, false, Some("search")),
        e("Distributed Spell Checker", Utilities, false, Some("spell")),
        e("Distributed Make", Utilities, false, Some("dmake")),
    ]
}

/// The four applications benchmarked in the paper's §3.3, in figure order.
pub fn benchmarked() -> Vec<AppEntry> {
    catalog().into_iter().filter(|e| e.benchmarked).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_classes() {
        let cat = catalog();
        for class in AppClass::all() {
            assert!(
                cat.iter().filter(|e| e.class == class).count() >= 4,
                "{class} underpopulated"
            );
        }
    }

    #[test]
    fn exactly_four_benchmarked() {
        let b = benchmarked();
        assert_eq!(b.len(), 4);
        let names: Vec<_> = b.iter().map(|e| e.name).collect();
        assert!(names.contains(&"JPEG Compression"));
        assert!(names.contains(&"Fast Fourier Transform"));
        assert!(names.contains(&"Monte Carlo Integration"));
        assert!(names.contains(&"Parallel Sorting"));
    }

    #[test]
    fn nearly_all_entries_are_implemented() {
        let cat = catalog();
        let implemented = cat.iter().filter(|e| e.module.is_some()).count();
        // Everything except the ADA compiler (out of scope: a full
        // compiler adds nothing to tool evaluation).
        assert_eq!(implemented, cat.len() - 1);
    }
}
