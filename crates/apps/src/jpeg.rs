//! JPEG compression (paper §3.3 application 1).
//!
//! A real DCT-based compression pipeline on a synthetic grayscale image:
//! level shift, 8x8 two-dimensional DCT, quantization, zigzag scan and
//! run-length encoding. Parallelized in the paper's host-node style: the
//! host (rank 0) distributes block-aligned row strips, every node —
//! including the host — compresses its strip, and the host collects the
//! compressed streams. Distribution and collection move large volumes of
//! data with no communication during the compute phase, which is why the
//! paper calls JPEG communication-heavy and why p4 (least communication
//! overhead) wins it.

use crate::util::{fnv1a, splitmix64};
use crate::workload::{block_range, Workload};
use bytes::Bytes;
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_STRIP: u32 = 100;
const TAG_RESULT: u32 = 101;

/// Analytic work of compressing one 8x8 block on a 1995 CPU: a
/// row-column DCT without fast-DCT symmetries (~2 x 8 naive 8-point
/// transforms), quantization, zigzag and RLE.
const FLOPS_PER_BLOCK: u64 = 5_000;
const INT_OPS_PER_BLOCK: u64 = 900;
const BYTES_MOVED_PER_BLOCK: u64 = 256;

/// The standard JPEG luminance quantization table.
#[rustfmt::skip]
const QTABLE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for an 8x8 block.
#[rustfmt::skip]
const ZIGZAG: [usize; 64] = [
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// JPEG compression workload configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegCompression {
    /// Image width in pixels (multiple of 8).
    pub width: usize,
    /// Image height in pixels (multiple of 8).
    pub height: usize,
    /// Seed for the synthetic image.
    pub seed: u64,
}

impl JpegCompression {
    /// The paper-scale workload: a 1024 x 1024 image (the paper motivates
    /// JPEG with the "vast amount of data" of digital imaging).
    pub fn paper() -> JpegCompression {
        JpegCompression {
            width: 1024,
            height: 1024,
            seed: 9,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> JpegCompression {
        JpegCompression {
            width: 64,
            height: 64,
            seed: 9,
        }
    }

    fn validate(&self) {
        assert!(
            self.width.is_multiple_of(8)
                && self.height.is_multiple_of(8)
                && self.width > 0
                && self.height > 0,
            "image dimensions must be positive multiples of 8"
        );
    }

    /// Deterministic synthetic grayscale image: smooth gradients plus
    /// seeded noise (compresses realistically — neither all-runs nor
    /// incompressible).
    pub fn generate_image(&self) -> Vec<u8> {
        self.validate();
        let mut img = Vec::with_capacity(self.width * self.height);
        let mut state = self.seed;
        for y in 0..self.height {
            for x in 0..self.width {
                let wave = 96.0
                    + 60.0 * ((x as f64 / 37.0).sin() + (y as f64 / 23.0).cos())
                    + 16.0 * (((x + y) as f64 / 101.0).sin());
                let noise = (splitmix64(&mut state) % 17) as f64 - 8.0;
                img.push((wave + noise).clamp(0.0, 255.0) as u8);
            }
        }
        img
    }

    fn rows_of_blocks(&self) -> usize {
        self.height / 8
    }
}

/// Forward 8-point DCT-II on one row of 8 samples (naive form, as 1995
/// codes commonly used).
fn dct8(input: &[f64; 8]) -> [f64; 8] {
    let mut out = [0.0f64; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let ck = if k == 0 { (0.5f64).sqrt() } else { 1.0 };
        let mut acc = 0.0;
        for (n, &v) in input.iter().enumerate() {
            acc += v * ((std::f64::consts::PI / 8.0) * (n as f64 + 0.5) * k as f64).cos();
        }
        *o = 0.5 * ck * acc;
    }
    out
}

/// Inverse 8-point DCT (used by tests to verify round-trip quality).
fn idct8(input: &[f64; 8]) -> [f64; 8] {
    let mut out = [0.0f64; 8];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &v) in input.iter().enumerate() {
            let ck = if k == 0 { (0.5f64).sqrt() } else { 1.0 };
            acc += ck * v * ((std::f64::consts::PI / 8.0) * (n as f64 + 0.5) * k as f64).cos();
        }
        *o = 0.5 * acc;
    }
    out
}

fn dct2d(block: &mut [f64; 64]) {
    for r in 0..8 {
        let mut row = [0.0; 8];
        row.copy_from_slice(&block[r * 8..r * 8 + 8]);
        let t = dct8(&row);
        block[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    for c in 0..8 {
        let mut col = [0.0; 8];
        for r in 0..8 {
            col[r] = block[r * 8 + c];
        }
        let t = dct8(&col);
        for r in 0..8 {
            block[r * 8 + c] = t[r];
        }
    }
}

fn idct2d(block: &mut [f64; 64]) {
    for c in 0..8 {
        let mut col = [0.0; 8];
        for r in 0..8 {
            col[r] = block[r * 8 + c];
        }
        let t = idct8(&col);
        for r in 0..8 {
            block[r * 8 + c] = t[r];
        }
    }
    for r in 0..8 {
        let mut row = [0.0; 8];
        row.copy_from_slice(&block[r * 8..r * 8 + 8]);
        let t = idct8(&row);
        block[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
}

/// Compresses a block-aligned strip of `rows` x `width` pixels. Returns
/// the encoded byte stream (quantized, zigzagged, run-length coded).
pub fn compress_strip(pixels: &[u8], width: usize, rows: usize) -> Vec<u8> {
    assert_eq!(pixels.len(), width * rows, "strip shape mismatch");
    assert!(
        width.is_multiple_of(8) && rows.is_multiple_of(8),
        "strip must be block aligned"
    );
    let mut out = Vec::with_capacity(pixels.len() / 4);
    for by in 0..rows / 8 {
        for bx in 0..width / 8 {
            let mut block = [0.0f64; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = pixels[(by * 8 + y) * width + bx * 8 + x] as f64 - 128.0;
                }
            }
            dct2d(&mut block);
            // Quantize + zigzag.
            let mut coeffs = [0i16; 64];
            for (i, &zz) in ZIGZAG.iter().enumerate() {
                coeffs[i] = (block[zz] / QTABLE[zz] as f64).round() as i16;
            }
            // RLE: (zero-run length, value) pairs; 0xFF run marks end of block.
            let mut run = 0u8;
            for &c in &coeffs {
                if c == 0 {
                    run += 1;
                    if run == 0xFE {
                        out.push(run);
                        out.extend_from_slice(&0i16.to_le_bytes());
                        run = 0;
                    }
                } else {
                    out.push(run);
                    out.extend_from_slice(&c.to_le_bytes());
                    run = 0;
                }
            }
            out.push(0xFF);
        }
    }
    out
}

/// Decompresses a stream produced by [`compress_strip`] (tests only —
/// verifies the codec round-trips with bounded error).
pub fn decompress_strip(stream: &[u8], width: usize, rows: usize) -> Vec<u8> {
    let mut pixels = vec![0u8; width * rows];
    let mut pos = 0;
    for by in 0..rows / 8 {
        for bx in 0..width / 8 {
            let mut coeffs = [0i16; 64];
            let mut idx = 0;
            loop {
                let run = stream[pos];
                pos += 1;
                if run == 0xFF {
                    break;
                }
                idx += run as usize;
                let v = i16::from_le_bytes([stream[pos], stream[pos + 1]]);
                pos += 2;
                if v != 0 {
                    coeffs[idx] = v;
                    idx += 1;
                }
            }
            let mut block = [0.0f64; 64];
            for (i, &zz) in ZIGZAG.iter().enumerate() {
                block[zz] = coeffs[i] as f64 * QTABLE[zz] as f64;
            }
            idct2d(&mut block);
            for y in 0..8 {
                for x in 0..8 {
                    pixels[(by * 8 + y) * width + bx * 8 + x] =
                        (block[y * 8 + x] + 128.0).clamp(0.0, 255.0) as u8;
                }
            }
        }
    }
    pixels
}

/// Output of the JPEG workload: compressed size and stream checksum
/// (identical across tools and processor counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JpegOutput {
    /// Total compressed bytes.
    pub compressed_len: u64,
    /// FNV-1a checksum of the compressed stream.
    pub checksum: u64,
}

impl JpegCompression {
    /// Charges the analytic compression work for `blocks` 8x8 blocks.
    fn charge_compress(&self, node: &mut Node<'_>, blocks: u64) {
        node.compute(Work {
            flops: FLOPS_PER_BLOCK * blocks,
            int_ops: INT_OPS_PER_BLOCK * blocks,
            bytes_moved: BYTES_MOVED_PER_BLOCK * blocks,
        });
    }
}

impl Workload for JpegCompression {
    type Output = JpegOutput;

    fn name(&self) -> &'static str {
        "JPEG Compression"
    }

    fn sequential(&self) -> JpegOutput {
        let img = self.generate_image();
        let stream = compress_strip(&img, self.width, self.height);
        JpegOutput {
            compressed_len: stream.len() as u64,
            checksum: fnv1a(&stream),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> JpegOutput {
        self.validate();
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let block_rows = self.rows_of_blocks();

        // --- distribution phase (host-node model) ---
        let my_strip: Vec<u8> = if me == 0 {
            // The host generates the image and ships each worker its
            // block-aligned strip.
            let img = self.generate_image();
            node.compute(Work {
                // Image synthesis: a few flops per pixel.
                flops: (self.width * self.height) as u64 * 6,
                int_ops: (self.width * self.height) as u64,
                bytes_moved: (self.width * self.height) as u64,
            });
            for r in 1..p {
                let rows = block_range(block_rows, p, r);
                let strip = &img[rows.start * 8 * self.width..rows.end * 8 * self.width];
                node.send(r, TAG_STRIP, Bytes::copy_from_slice(strip))
                    .expect("strip send failed");
            }
            let rows = block_range(block_rows, p, 0);
            img[rows.start * 8 * self.width..rows.end * 8 * self.width].to_vec()
        } else {
            let msg = node
                .recv(Some(0), Some(TAG_STRIP))
                .expect("strip recv failed");
            msg.data.to_vec()
        };

        // --- computation phase (no communication, as the paper notes) ---
        let my_rows = my_strip.len() / self.width;
        let stream = compress_strip(&my_strip, self.width, my_rows);
        self.charge_compress(node, (my_rows as u64 / 8) * (self.width as u64 / 8));

        // --- collection phase ---
        if me == 0 {
            let mut total = stream;
            // The host knows exactly which worker holds which strip, so it
            // posts directed receives in strip order (cheaper than
            // wildcard receives under p4's socket-per-peer model).
            for r in 1..p {
                let msg = node
                    .recv(Some(r), Some(TAG_RESULT))
                    .expect("collect failed");
                total.extend_from_slice(&msg.data);
            }
            JpegOutput {
                compressed_len: total.len() as u64,
                checksum: fnv1a(&total),
            }
        } else {
            node.send(0, TAG_RESULT, Bytes::from(stream))
                .expect("result send failed");
            JpegOutput {
                compressed_len: 0,
                checksum: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn dct_idct_round_trip() {
        let input = [1.0, -3.0, 5.5, 0.0, 2.25, -7.0, 8.0, 4.0];
        let back = idct8(&dct8(&input));
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn compression_reduces_size() {
        let cfg = JpegCompression::small();
        let img = cfg.generate_image();
        let stream = compress_strip(&img, cfg.width, cfg.height);
        assert!(
            stream.len() < img.len(),
            "no compression: {} >= {}",
            stream.len(),
            img.len()
        );
    }

    #[test]
    fn codec_round_trip_error_is_bounded() {
        let cfg = JpegCompression::small();
        let img = cfg.generate_image();
        let stream = compress_strip(&img, cfg.width, cfg.height);
        let back = decompress_strip(&stream, cfg.width, cfg.height);
        assert_eq!(back.len(), img.len());
        let mse: f64 = img
            .iter()
            .zip(&back)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / img.len() as f64;
        // Lossy, but JPEG-quality lossy (PSNR well above 25 dB).
        assert!(mse < 120.0, "mse too high: {mse}");
    }

    #[test]
    fn distributed_matches_sequential_for_all_tools() {
        let w = JpegCompression::small();
        let expect = w.sequential();
        for tool in ToolKind::all() {
            for procs in [1, 2, 4] {
                let cfg = SpmdConfig::new(Platform::SUN_ATM_LAN, tool, procs);
                let out = run_workload(&w, &cfg).unwrap();
                assert_eq!(out.results[0], expect, "{tool} x{procs}");
            }
        }
    }

    #[test]
    fn more_processors_are_faster_at_paper_scale() {
        // Compute dominates at 1024^2, so the strong-scaling curve must
        // descend (paper Figure 5, JPEG pane).
        let w = JpegCompression {
            width: 512,
            height: 512,
            seed: 1,
        };
        let t1 = run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, 1))
            .unwrap()
            .elapsed;
        let t4 = run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, 4))
            .unwrap()
            .elapsed;
        assert!(t4.as_secs_f64() < t1.as_secs_f64() * 0.6, "t1={t1} t4={t4}");
    }
}
