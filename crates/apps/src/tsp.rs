//! Traveling Salesman (Table 2, simulation/optimization class).
//!
//! Exact branch-and-bound: first-city prefixes are statically partitioned
//! across nodes, each node searches its subtrees depth-first with
//! bound pruning, and the global optimum is combined at the end. Static
//! partitioning keeps the result and the work deterministic.

use crate::util::{hash64, unit_f64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_BEST: u32 = 180;

/// TSP workload: `cities` on a seeded random plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tsp {
    /// Number of cities (exact search; keep modest).
    pub cities: usize,
    /// Seed for city coordinates.
    pub seed: u64,
}

impl Tsp {
    /// A representative workload size.
    pub fn paper() -> Tsp {
        Tsp {
            cities: 11,
            seed: 67,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> Tsp {
        Tsp {
            cities: 8,
            seed: 67,
        }
    }

    /// City coordinates.
    pub fn coords(&self) -> Vec<(f64, f64)> {
        (0..self.cities)
            .map(|i| {
                (
                    unit_f64(hash64(self.seed.wrapping_add(i as u64 * 2))),
                    unit_f64(hash64(self.seed.wrapping_add(i as u64 * 2 + 1))),
                )
            })
            .collect()
    }

    fn dist_matrix(&self) -> Vec<Vec<f64>> {
        let c = self.coords();
        (0..self.cities)
            .map(|i| {
                (0..self.cities)
                    .map(|j| {
                        let dx = c[i].0 - c[j].0;
                        let dy = c[i].1 - c[j].1;
                        (dx * dx + dy * dy).sqrt()
                    })
                    .collect()
            })
            .collect()
    }
}

/// Depth-first branch-and-bound from a fixed prefix. Returns the best
/// complete tour cost found and the number of nodes expanded.
fn search(
    d: &[Vec<f64>],
    path: &mut Vec<usize>,
    visited: &mut Vec<bool>,
    cost_so_far: f64,
    best: &mut f64,
    expanded: &mut u64,
) {
    let n = d.len();
    *expanded += 1;
    if cost_so_far >= *best {
        return; // bound
    }
    if path.len() == n {
        let total = cost_so_far + d[*path.last().expect("tour")][path[0]];
        if total < *best {
            *best = total;
        }
        return;
    }
    let last = *path.last().expect("nonempty path");
    for next in 1..n {
        if !visited[next] {
            visited[next] = true;
            path.push(next);
            search(
                d,
                path,
                visited,
                cost_so_far + d[last][next],
                best,
                expanded,
            );
            path.pop();
            visited[next] = false;
        }
    }
}

/// Output: optimal tour cost (microdegree-rounded for stable comparison)
/// and nodes expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TspOutput {
    /// Optimal tour length scaled by 1e9 and rounded — exact comparisons
    /// across runs without fp-equality pitfalls.
    pub best_nano: u64,
}

fn run_prefixes(tsp: &Tsp, prefixes: std::ops::Range<usize>, best_in: f64) -> (f64, u64) {
    let d = tsp.dist_matrix();
    let mut best = best_in;
    let mut expanded = 0u64;
    for second in prefixes {
        let second = second + 1; // cities 1..n as the tour's second stop
        let mut path = vec![0, second];
        let mut visited = vec![false; tsp.cities];
        visited[0] = true;
        visited[second] = true;
        search(
            &d,
            &mut path,
            &mut visited,
            d[0][second],
            &mut best,
            &mut expanded,
        );
    }
    (best, expanded)
}

impl Workload for Tsp {
    type Output = TspOutput;

    fn name(&self) -> &'static str {
        "Traveling Salesman"
    }

    fn sequential(&self) -> TspOutput {
        let (best, _) = run_prefixes(self, 0..self.cities - 1, f64::INFINITY);
        TspOutput {
            best_nano: (best * 1e9).round() as u64,
        }
    }

    fn run(&self, node: &mut Node<'_>) -> TspOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        // Partition the second-city choices.
        let range = block_range(self.cities - 1, p, me);
        let (best, expanded) = run_prefixes(self, range, f64::INFINITY);
        node.compute(Work {
            flops: expanded * 6,
            int_ops: expanded * 12,
            bytes_moved: 0,
        });

        // Min-combine at rank 0, then broadcast.
        if me == 0 {
            let mut global = best;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_BEST)).expect("best gather");
                let b = MsgReader::new(msg.data).get_f64().expect("best");
                global = global.min(b);
            }
            let mut w = MsgWriter::new();
            w.put_f64(global);
            node.broadcast(0, w.freeze()).expect("best bcast");
            TspOutput {
                best_nano: (global * 1e9).round() as u64,
            }
        } else {
            let mut w = MsgWriter::new();
            w.put_f64(best);
            node.send(0, TAG_BEST, w.freeze()).expect("best send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("best bcast");
            TspOutput {
                best_nano: (MsgReader::new(data).get_f64().expect("best") * 1e9).round() as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn square_tour_is_perimeter() {
        // 4 cities on a unit square: optimal tour = 4.
        let d = vec![
            vec![0.0, 1.0, 2f64.sqrt(), 1.0],
            vec![1.0, 0.0, 1.0, 2f64.sqrt()],
            vec![2f64.sqrt(), 1.0, 0.0, 1.0],
            vec![1.0, 2f64.sqrt(), 1.0, 0.0],
        ];
        let mut best = f64::INFINITY;
        let mut expanded = 0;
        for second in 1..4 {
            let mut path = vec![0, second];
            let mut visited = vec![false; 4];
            visited[0] = true;
            visited[second] = true;
            search(
                &d,
                &mut path,
                &mut visited,
                d[0][second],
                &mut best,
                &mut expanded,
            );
        }
        assert!((best - 4.0).abs() < 1e-12, "best {best}");
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = Tsp::small();
        let expect = w.sequential();
        for procs in [1, 2, 4] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::SP1_SWITCH, ToolKind::P4, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }
}
