//! Hough transform (Table 2, signal/image class).
//!
//! Line detection by (ρ, θ) voting: each node accumulates votes over its
//! strip of edge pixels, accumulators are summed globally, and the
//! strongest line wins. The accumulator reduction is a large integer
//! vector sum — `p4_global_op`/`excombine` where available, hand-rolled
//! for PVM.

use crate::util::{hash64, portable_sum_i32};
use crate::workload::{block_range, Workload};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_VOTES: u32 = 200;
const THETA_BINS: usize = 180;
const RHO_BINS: usize = 128;

/// Hough transform workload on a synthetic edge image containing a known
/// line plus noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoughTransform {
    /// Image side length.
    pub size: usize,
    /// Noise points added per 64 pixels of the line.
    pub noise: usize,
    /// Seed for noise placement.
    pub seed: u64,
}

impl HoughTransform {
    /// A representative workload size.
    pub fn paper() -> HoughTransform {
        HoughTransform {
            size: 512,
            noise: 2_000,
            seed: 81,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> HoughTransform {
        HoughTransform {
            size: 64,
            noise: 60,
            seed: 81,
        }
    }

    /// Edge points: a diagonal line plus seeded noise.
    pub fn edge_points(&self) -> Vec<(usize, usize)> {
        let mut pts: Vec<(usize, usize)> = (0..self.size).map(|i| (i, i)).collect();
        for k in 0..self.noise {
            let h = hash64(self.seed.wrapping_add(k as u64));
            pts.push((
                (h % self.size as u64) as usize,
                ((h >> 32) % self.size as u64) as usize,
            ));
        }
        pts
    }

    fn vote(&self, pts: &[(usize, usize)], acc: &mut [i32]) {
        let max_rho = (self.size as f64) * std::f64::consts::SQRT_2;
        for &(x, y) in pts {
            for t in 0..THETA_BINS {
                let theta = t as f64 * std::f64::consts::PI / THETA_BINS as f64;
                let rho = x as f64 * theta.cos() + y as f64 * theta.sin();
                let bin =
                    ((rho + max_rho) / (2.0 * max_rho) * (RHO_BINS - 1) as f64).round() as usize;
                acc[t * RHO_BINS + bin.min(RHO_BINS - 1)] += 1;
            }
        }
    }
}

/// Output: the winning accumulator cell and its vote count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoughOutput {
    /// Index of the strongest (θ, ρ) cell.
    pub peak_cell: u32,
    /// Votes in that cell.
    pub peak_votes: i32,
}

impl Workload for HoughTransform {
    type Output = HoughOutput;

    fn name(&self) -> &'static str {
        "Hough Transform"
    }

    fn sequential(&self) -> HoughOutput {
        let pts = self.edge_points();
        let mut acc = vec![0i32; THETA_BINS * RHO_BINS];
        self.vote(&pts, &mut acc);
        peak(&acc)
    }

    fn run(&self, node: &mut Node<'_>) -> HoughOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let pts = self.edge_points();
        let range = block_range(pts.len(), p, me);

        let mut acc = vec![0i32; THETA_BINS * RHO_BINS];
        self.vote(&pts[range.clone()], &mut acc);
        node.compute(Work {
            flops: (range.len() * THETA_BINS * 4) as u64,
            int_ops: (range.len() * THETA_BINS * 2) as u64,
            bytes_moved: (THETA_BINS * RHO_BINS * 4) as u64,
        });

        let total = portable_sum_i32(node, &acc, TAG_VOTES);
        node.compute(Work::int_ops(total.len() as u64));
        peak_result(&total)
    }
}

fn peak(acc: &[i32]) -> HoughOutput {
    peak_result(acc)
}

fn peak_result(acc: &[i32]) -> HoughOutput {
    let (cell, votes) = acc
        .iter()
        .enumerate()
        .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
        .expect("nonempty accumulator");
    HoughOutput {
        peak_cell: cell as u32,
        peak_votes: *votes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn detects_the_diagonal_line() {
        let w = HoughTransform::small();
        let out = w.sequential();
        // The diagonal contributes `size` collinear votes; noise cells
        // hold far fewer.
        assert!(
            out.peak_votes >= w.size as i32,
            "peak votes {} below line length",
            out.peak_votes
        );
        // θ = 135° for the x = y line (1°-wide bins).
        let theta_bin = out.peak_cell as usize / RHO_BINS;
        assert!(
            (130..=140).contains(&theta_bin),
            "unexpected θ bin {theta_bin}"
        );
    }

    #[test]
    fn distributed_matches_sequential_for_all_tools() {
        let w = HoughTransform::small();
        let expect = w.sequential();
        for tool in ToolKind::all() {
            for procs in [1, 2, 4] {
                let out =
                    run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs)).unwrap();
                for r in &out.results {
                    assert_eq!(r, &expect, "{tool} x{procs}");
                }
            }
        }
    }
}
