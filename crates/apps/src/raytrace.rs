//! Ray tracing (Table 2, signal/image class).
//!
//! A small but real ray tracer: spheres with Lambertian shading and hard
//! shadows, scanline strips rendered in parallel, pixels gathered at the
//! host. Embarrassingly parallel compute with a sizeable collection
//! phase.

use crate::util::{fnv1a, hash64, unit_f64};
use crate::workload::{block_range, Workload};
use bytes::Bytes;
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_PIXELS: u32 = 210;

/// Ray tracing workload: `size x size` pixels over a seeded sphere scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RayTrace {
    /// Image side length.
    pub size: usize,
    /// Number of spheres.
    pub spheres: usize,
    /// Scene seed.
    pub seed: u64,
}

impl RayTrace {
    /// A representative workload size.
    pub fn paper() -> RayTrace {
        RayTrace {
            size: 256,
            spheres: 12,
            seed: 91,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> RayTrace {
        RayTrace {
            size: 32,
            spheres: 5,
            seed: 91,
        }
    }

    /// Scene spheres as `(cx, cy, cz, r, albedo)`.
    fn scene(&self) -> Vec<(f64, f64, f64, f64, f64)> {
        (0..self.spheres)
            .map(|i| {
                let h = |k: u64| unit_f64(hash64(self.seed.wrapping_add(i as u64 * 8 + k)));
                (
                    h(0) * 4.0 - 2.0,
                    h(1) * 4.0 - 2.0,
                    3.0 + h(2) * 4.0,
                    0.3 + h(3) * 0.5,
                    0.4 + h(4) * 0.6,
                )
            })
            .collect()
    }

    fn trace_row(&self, scene: &[(f64, f64, f64, f64, f64)], y: usize) -> Vec<u8> {
        let n = self.size as f64;
        let light = (-4.0f64, 5.0, 0.0);
        (0..self.size)
            .map(|x| {
                let dir = (
                    (x as f64 / n) * 2.0 - 1.0,
                    1.0 - (y as f64 / n) * 2.0,
                    1.5f64,
                );
                let len = (dir.0 * dir.0 + dir.1 * dir.1 + dir.2 * dir.2).sqrt();
                let d = (dir.0 / len, dir.1 / len, dir.2 / len);
                match nearest_hit(scene, (0.0, 0.0, 0.0), d) {
                    None => 16u8, // background
                    Some((t, si)) => {
                        let p = (d.0 * t, d.1 * t, d.2 * t);
                        let s = scene[si];
                        let nrm = ((p.0 - s.0) / s.3, (p.1 - s.1) / s.3, (p.2 - s.2) / s.3);
                        let lv = (light.0 - p.0, light.1 - p.1, light.2 - p.2);
                        let ll = (lv.0 * lv.0 + lv.1 * lv.1 + lv.2 * lv.2).sqrt();
                        let l = (lv.0 / ll, lv.1 / ll, lv.2 / ll);
                        // Shadow ray.
                        let eps = (p.0 + nrm.0 * 1e-6, p.1 + nrm.1 * 1e-6, p.2 + nrm.2 * 1e-6);
                        let lit = match nearest_hit(scene, eps, l) {
                            Some((ts, _)) if ts < ll => 0.12,
                            _ => 1.0,
                        };
                        let diff = (nrm.0 * l.0 + nrm.1 * l.1 + nrm.2 * l.2).max(0.0);
                        (255.0 * (0.08 + 0.92 * diff * s.4 * lit)).min(255.0) as u8
                    }
                }
            })
            .collect()
    }
}

fn nearest_hit(
    scene: &[(f64, f64, f64, f64, f64)],
    o: (f64, f64, f64),
    d: (f64, f64, f64),
) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (i, &(cx, cy, cz, r, _)) in scene.iter().enumerate() {
        let oc = (o.0 - cx, o.1 - cy, o.2 - cz);
        let b = oc.0 * d.0 + oc.1 * d.1 + oc.2 * d.2;
        let c = oc.0 * oc.0 + oc.1 * oc.1 + oc.2 * oc.2 - r * r;
        let disc = b * b - c;
        if disc > 0.0 {
            let t = -b - disc.sqrt();
            if t > 1e-9 && best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
    }
    best
}

/// Output: checksum over the rendered image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RayTraceOutput {
    /// FNV-1a over row-major pixels.
    pub checksum: u64,
}

impl Workload for RayTrace {
    type Output = RayTraceOutput;

    fn name(&self) -> &'static str {
        "Ray Tracing"
    }

    fn sequential(&self) -> RayTraceOutput {
        let scene = self.scene();
        let mut img = Vec::with_capacity(self.size * self.size);
        for y in 0..self.size {
            img.extend(self.trace_row(&scene, y));
        }
        RayTraceOutput {
            checksum: fnv1a(&img),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> RayTraceOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let scene = self.scene();
        let rows = block_range(self.size, p, me);

        let mut strip = Vec::with_capacity(rows.len() * self.size);
        for y in rows.clone() {
            strip.extend(self.trace_row(&scene, y));
        }
        // ~60 flops per pixel per sphere (intersection + shading).
        node.compute(Work::flops(
            (rows.len() * self.size * self.spheres) as u64 * 60,
        ));

        if me == 0 {
            let mut img = vec![0u8; self.size * self.size];
            img[rows.start * self.size..rows.end * self.size].copy_from_slice(&strip);
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_PIXELS)).expect("pixel gather");
                let rr = block_range(self.size, p, msg.src);
                img[rr.start * self.size..rr.end * self.size].copy_from_slice(&msg.data);
            }
            let h = fnv1a(&img);
            let mut w = MsgWriter::new();
            w.put_u64(h);
            node.broadcast(0, w.freeze()).expect("sum bcast");
            RayTraceOutput { checksum: h }
        } else {
            node.send(0, TAG_PIXELS, Bytes::from(strip)).expect("send");
            let data = node.broadcast(0, Bytes::new()).expect("sum bcast");
            RayTraceOutput {
                checksum: MsgReader::new(data).get_u64().expect("sum"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn image_contains_spheres_and_background() {
        let w = RayTrace::small();
        let scene = w.scene();
        let mut histogram = [0usize; 2];
        for y in 0..w.size {
            for px in w.trace_row(&scene, y) {
                histogram[usize::from(px != 16)] += 1;
            }
        }
        assert!(histogram[0] > 0, "no background visible");
        assert!(histogram[1] > 0, "no sphere visible");
    }

    #[test]
    fn direct_hit_returns_nearest_sphere() {
        let scene = vec![(0.0, 0.0, 5.0, 1.0, 0.5), (0.0, 0.0, 10.0, 1.0, 0.5)];
        let hit = nearest_hit(&scene, (0.0, 0.0, 0.0), (0.0, 0.0, 1.0)).expect("hit");
        assert_eq!(hit.1, 0);
        assert!((hit.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = RayTrace::small();
        let expect = w.sequential();
        for procs in [1, 3] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::SUN_ATM_LAN, ToolKind::PVM, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }
}
