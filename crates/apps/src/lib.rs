//! # pdceval-apps
//!
//! The **SU PDABS** application benchmark suite (paper Table 2) — real
//! parallel/distributed applications written against the tool-portable
//! [`pdceval_mpt::node::Node`] API, with sequential references for
//! correctness.
//!
//! The paper's §3.3 benchmarks four of them, one per class:
//!
//! * [`jpeg`] — JPEG compression (signal/image; host-node model,
//!   communication-heavy distribute/collect phases);
//! * [`fft`] — two-dimensional FFT (numerical; all-to-all transposes);
//! * [`monte_carlo`] — Monte Carlo integration (simulation; compute-bound
//!   with a tiny combine);
//! * [`psrs`] — Parallel Sorting by Regular Sampling (utility;
//!   data-dependent all-to-all exchange).
//!
//! The remaining Table 2 entries are implemented in their own modules so
//! the suite is usable beyond the paper's four figures.
//!
//! Every workload performs real computation (real DCTs, butterflies,
//! comparisons, ray intersections) and advances simulated time through
//! analytic work models, keeping runs deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compress;
pub mod crypto;
pub mod dmake;
pub mod fft;
pub mod hough;
pub mod jpeg;
pub mod knapsack;
pub mod lu;
pub mod matmul;
pub mod monte_carlo;
pub mod nbody;
pub mod psrs;
pub mod raytrace;
pub mod registry;
pub mod search;
pub mod solver;
pub mod spell;
pub mod tsp;
pub mod util;
pub mod workload;

pub use registry::{benchmarked, catalog, AppClass, AppEntry};
pub use workload::{block_range, run_workload, Workload, WorkloadOutcome};
