//! Data compression (Table 2, signal/image class).
//!
//! Run-length encoding of a synthetic data stream in the host-node
//! style: the host scatters block-aligned chunks, nodes compress, the
//! host concatenates the encoded chunks.

use crate::util::{fnv1a, splitmix64};
use crate::workload::{block_range, Workload};
use bytes::Bytes;
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_CHUNK: u32 = 220;
const TAG_ENCODED: u32 = 221;

/// RLE compression workload over a run-friendly synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RleCompression {
    /// Stream length in bytes.
    pub len: usize,
    /// Seed controlling run structure.
    pub seed: u64,
}

impl RleCompression {
    /// A representative workload size.
    pub fn paper() -> RleCompression {
        RleCompression {
            len: 1 << 20,
            seed: 101,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> RleCompression {
        RleCompression {
            len: 4 << 10,
            seed: 101,
        }
    }

    /// The synthetic stream: geometric-ish run lengths over a small
    /// alphabet (compresses well but not trivially).
    pub fn generate(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        let mut state = self.seed;
        while out.len() < self.len {
            let h = splitmix64(&mut state);
            let symbol = (h & 0x0F) as u8 * 17;
            let run = 1 + (h >> 8) % 24;
            for _ in 0..run {
                if out.len() == self.len {
                    break;
                }
                out.push(symbol);
            }
        }
        out
    }
}

/// RLE-encodes one chunk: `(count, byte)` pairs with 255-capped runs.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Decodes an RLE stream (tests).
pub fn rle_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for pair in data.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    out
}

/// Output: encoded length and checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressOutput {
    /// Bytes after compression (sum of per-chunk encodings).
    pub encoded_len: u64,
    /// FNV-1a over the concatenated encodings.
    pub checksum: u64,
}

impl Workload for RleCompression {
    type Output = CompressOutput;

    fn name(&self) -> &'static str {
        "Data Compression"
    }

    fn sequential(&self) -> CompressOutput {
        // The reference mirrors the chunked structure (per-chunk RLE with
        // the same partitioning rule is only defined per P, so the
        // sequential reference uses one chunk).
        let enc = rle_encode(&self.generate());
        CompressOutput {
            encoded_len: enc.len() as u64,
            checksum: fnv1a(&enc),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> CompressOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();

        let my_chunk: Vec<u8> = if me == 0 {
            let data = self.generate();
            node.compute(Work {
                flops: 0,
                int_ops: self.len as u64,
                bytes_moved: self.len as u64,
            });
            for r in 1..p {
                let rr = block_range(self.len, p, r);
                node.send(r, TAG_CHUNK, Bytes::copy_from_slice(&data[rr]))
                    .expect("chunk send");
            }
            let rr = block_range(self.len, p, 0);
            data[rr].to_vec()
        } else {
            node.recv(Some(0), Some(TAG_CHUNK))
                .expect("chunk recv")
                .data
                .to_vec()
        };

        let encoded = rle_encode(&my_chunk);
        node.compute(Work {
            flops: 0,
            int_ops: my_chunk.len() as u64 * 3,
            bytes_moved: (my_chunk.len() + encoded.len()) as u64,
        });

        if me == 0 {
            let mut parts: Vec<Option<Vec<u8>>> = vec![None; p];
            parts[0] = Some(encoded);
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_ENCODED)).expect("enc recv");
                parts[msg.src] = Some(msg.data.to_vec());
            }
            let mut total = Vec::new();
            for part in parts.into_iter().flatten() {
                total.extend(part);
            }
            CompressOutput {
                encoded_len: total.len() as u64,
                checksum: fnv1a(&total),
            }
        } else {
            node.send(0, TAG_ENCODED, Bytes::from(encoded))
                .expect("enc send");
            CompressOutput {
                encoded_len: 0,
                checksum: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn rle_round_trips() {
        let w = RleCompression::small();
        let data = w.generate();
        assert_eq!(rle_decode(&rle_encode(&data)), data);
    }

    #[test]
    fn compression_shrinks_runs() {
        let w = RleCompression::small();
        let data = w.generate();
        let enc = rle_encode(&data);
        assert!(enc.len() < data.len(), "{} !< {}", enc.len(), data.len());
    }

    #[test]
    fn single_node_matches_sequential() {
        let w = RleCompression::small();
        let expect = w.sequential();
        let out = run_workload(
            &w,
            &SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::P4, 1),
        )
        .unwrap();
        assert_eq!(out.results[0], expect);
    }

    #[test]
    fn chunked_decode_recovers_the_stream() {
        // Chunk boundaries may split runs, so encodings differ across P,
        // but decoding the concatenation must recover the exact stream.
        let w = RleCompression::small();
        let data = w.generate();
        let mut concat = Vec::new();
        for r in 0..3 {
            let rr = crate::workload::block_range(w.len, 3, r);
            concat.extend(rle_encode(&data[rr]));
        }
        assert_eq!(rle_decode(&concat), data);
    }
}
