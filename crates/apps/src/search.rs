//! Parallel search (Table 2, utilities class).
//!
//! Counts occurrences of a pattern in a distributed synthetic corpus:
//! each node scans its chunk (with overlap at boundaries so straddling
//! matches are not lost) and the counts are summed.

use crate::util::splitmix64;
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_COUNT: u32 = 240;

/// Parallel text search workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelSearch {
    /// Corpus length in bytes.
    pub len: usize,
    /// Pattern to search for.
    pub pattern: Vec<u8>,
    /// Corpus seed.
    pub seed: u64,
}

impl ParallelSearch {
    /// A representative workload size.
    pub fn paper() -> ParallelSearch {
        ParallelSearch {
            len: 2 << 20,
            pattern: b"the".to_vec(),
            seed: 111,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> ParallelSearch {
        ParallelSearch {
            len: 16 << 10,
            pattern: b"ab".to_vec(),
            seed: 111,
        }
    }

    /// Synthetic corpus over a small alphabet (so matches actually occur).
    pub fn corpus(&self) -> Vec<u8> {
        let mut state = self.seed;
        (0..self.len)
            .map(|_| b"abcdefght e"[(splitmix64(&mut state) % 11) as usize])
            .collect()
    }

    fn count_in(&self, hay: &[u8]) -> u64 {
        if self.pattern.is_empty() || hay.len() < self.pattern.len() {
            return 0;
        }
        hay.windows(self.pattern.len())
            .filter(|w| *w == &self.pattern[..])
            .count() as u64
    }
}

/// Output: total occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutput {
    /// Number of (possibly overlapping) matches.
    pub matches: u64,
}

impl Workload for ParallelSearch {
    type Output = SearchOutput;

    fn name(&self) -> &'static str {
        "Parallel Search"
    }

    fn sequential(&self) -> SearchOutput {
        SearchOutput {
            matches: self.count_in(&self.corpus()),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> SearchOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let corpus = self.corpus();
        let range = block_range(self.len, p, me);
        // Extend by pattern-1 bytes so boundary-straddling matches count
        // exactly once (owned by the chunk where they start).
        let end = (range.end + self.pattern.len() - 1).min(self.len);
        let local = self.count_in(&corpus[range.start..end]);
        node.compute(Work::int_ops(
            ((end - range.start) * self.pattern.len()) as u64,
        ));

        if me == 0 {
            let mut total = local;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_COUNT)).expect("count gather");
                total += MsgReader::new(msg.data).get_u64().expect("count");
            }
            let mut w = MsgWriter::new();
            w.put_u64(total);
            node.broadcast(0, w.freeze()).expect("count bcast");
            SearchOutput { matches: total }
        } else {
            let mut w = MsgWriter::new();
            w.put_u64(local);
            node.send(0, TAG_COUNT, w.freeze()).expect("count send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("count bcast");
            SearchOutput {
                matches: MsgReader::new(data).get_u64().expect("count"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn counts_known_pattern() {
        let w = ParallelSearch {
            len: 10,
            pattern: b"aa".to_vec(),
            seed: 0,
        };
        assert_eq!(w.count_in(b"aaaa"), 3); // overlapping matches
        assert_eq!(w.count_in(b"bbbb"), 0);
    }

    #[test]
    fn sequential_finds_matches() {
        let w = ParallelSearch::small();
        assert!(w.sequential().matches > 0, "degenerate corpus");
    }

    #[test]
    fn distributed_matches_sequential_across_boundaries() {
        let w = ParallelSearch::small();
        let expect = w.sequential();
        for procs in [1, 2, 4, 7] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::PVM, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }
}
