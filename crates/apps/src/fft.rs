//! Two-dimensional Fast Fourier Transform (paper §3.3 application 2).
//!
//! A real complex radix-2 FFT over a synthetic matrix: every node
//! transforms its block of rows, the matrix is transposed through an
//! all-to-all block exchange, the (former) columns are transformed, and a
//! second transpose restores the layout. The transposes "involve transfer
//! of large amounts of data between processors", which is why the paper
//! uses 2D-FFT to stress communication primitives.
//!
//! The transpose sub-blocks are non-contiguous in row-major storage, so
//! the exchange uses [`Node::send_strided`]: PVM packs strides natively,
//! p4/Express applications pay a gather pass — though at FFT's small
//! message sizes the fixed per-message costs dominate and p4 still wins,
//! matching Figure 5.

use crate::util::{fnv1a_f64, hash64, unit_f64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_TRANSPOSE_A: u32 = 110;
const TAG_TRANSPOSE_B: u32 = 111;
const TAG_GATHER: u32 = 112;

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

/// 2D FFT workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fft2d {
    /// Matrix side length (power of two).
    pub n: usize,
    /// Seed for the synthetic input matrix.
    pub seed: u64,
}

impl Fft2d {
    /// The paper-scale workload: a 64 x 64 "screen of video data"
    /// (millisecond-scale times, matching Figure 5's FFT pane).
    pub fn paper() -> Fft2d {
        Fft2d { n: 64, seed: 5 }
    }

    /// A small configuration for fast tests.
    pub fn small() -> Fft2d {
        Fft2d { n: 16, seed: 5 }
    }

    fn validate(&self) {
        assert!(
            self.n.is_power_of_two() && self.n >= 2,
            "FFT size must be a power of two >= 2"
        );
    }

    /// The deterministic synthetic input matrix, row-major.
    pub fn generate_matrix(&self) -> Vec<Complex> {
        self.validate();
        (0..self.n * self.n)
            .map(|i| {
                let h = hash64(self.seed.wrapping_mul(0x9E37).wrapping_add(i as u64));
                (unit_f64(h) * 2.0 - 1.0, 0.0)
            })
            .collect()
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT of a power-of-two slice.
/// `inverse` selects the inverse transform (unscaled; callers divide by n).
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = data[start + k];
                let (br, bi) = data[start + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[start + k] = (ar + tr, ai + ti);
                data[start + k + len / 2] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
}

/// Analytic work of one length-`n` FFT (the classic `5 n log2 n` flops).
fn fft_work(n: usize) -> Work {
    let logn = n.trailing_zeros() as u64;
    Work::flops(5 * n as u64 * logn)
}

/// Sequential 2D FFT: all rows, transpose, all rows again, transpose.
pub fn fft2d_sequential(matrix: &mut [Complex], n: usize) {
    for r in 0..n {
        fft_inplace(&mut matrix[r * n..(r + 1) * n], false);
    }
    transpose(matrix, n);
    for r in 0..n {
        fft_inplace(&mut matrix[r * n..(r + 1) * n], false);
    }
    transpose(matrix, n);
}

fn transpose(m: &mut [Complex], n: usize) {
    for r in 0..n {
        for c in r + 1..n {
            m.swap(r * n + c, c * n + r);
        }
    }
}

/// Output of the FFT workload: a checksum of the full spectrum (identical
/// across tools and processor counts — the arithmetic is independent of
/// the partitioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftOutput {
    /// FNV-1a over the spectrum's bit patterns.
    pub checksum: u64,
}

fn encode_block(rows: &[Vec<Complex>]) -> bytes::Bytes {
    let count: usize = rows.iter().map(Vec::len).sum();
    let mut w = MsgWriter::with_capacity(8 + count * 16);
    w.put_u32(rows.len() as u32);
    for row in rows {
        let flat: Vec<f64> = row.iter().flat_map(|&(re, im)| [re, im]).collect();
        w.put_f64_slice(&flat);
    }
    w.freeze()
}

fn decode_block(data: bytes::Bytes) -> Vec<Vec<Complex>> {
    let mut r = MsgReader::new(data);
    let nrows = r.get_u32().expect("block header") as usize;
    (0..nrows)
        .map(|_| {
            let flat = r.get_f64_slice().expect("block row");
            flat.chunks_exact(2).map(|c| (c[0], c[1])).collect()
        })
        .collect()
}

/// Distributed transpose: every node exchanges sub-blocks with every
/// other node, then locally transposes. `my_rows` is this rank's row
/// block (row-major, full width `n`); returns the rank's rows of the
/// transposed matrix.
fn distributed_transpose(
    node: &mut Node<'_>,
    my_rows: Vec<Vec<Complex>>,
    n: usize,
    tag: u32,
) -> Vec<Vec<Complex>> {
    let p = node.nprocs();
    let me = node.rank();
    let my_range = block_range(n, p, me);

    // Send to every peer the sub-block of my rows that lands in their
    // row range after the transpose (my columns in their range).
    for r in 0..p {
        if r == me {
            continue;
        }
        let their = block_range(n, p, r);
        let sub: Vec<Vec<Complex>> = my_rows
            .iter()
            .map(|row| row[their.clone()].to_vec())
            .collect();
        // Sub-block columns are strided in row-major storage.
        node.send_strided(r, tag, encode_block(&sub), 16)
            .expect("transpose send failed");
    }

    // Assemble my transposed rows: columns `my_range` of the full matrix.
    let mut out: Vec<Vec<Complex>> = vec![vec![(0.0, 0.0); n]; my_range.len()];
    // Local contribution.
    for (i, row) in my_rows.iter().enumerate() {
        let global_row = my_range.start + i;
        for (j, &v) in row[my_range.clone()].iter().enumerate() {
            out[j][global_row] = v;
        }
    }
    // Remote contributions, received in a fixed peer order (the sources
    // are statically known, so directed receives avoid p4's wildcard
    // polling cost; the mailbox buffers out-of-order arrivals).
    for r in (0..p).filter(|&r| r != me) {
        let msg = node
            .recv(Some(r), Some(tag))
            .expect("transpose recv failed");
        let src_range = block_range(n, p, msg.src);
        let block = decode_block(msg.data);
        for (i, brow) in block.iter().enumerate() {
            let global_row = src_range.start + i;
            for (j, &v) in brow.iter().enumerate() {
                out[j][global_row] = v;
            }
        }
    }
    // Local transpose bookkeeping.
    node.compute(Work {
        flops: 0,
        int_ops: (n * my_range.len()) as u64,
        bytes_moved: (n * my_range.len() * 16) as u64,
    });
    out
}

impl Workload for Fft2d {
    type Output = FftOutput;

    fn name(&self) -> &'static str {
        "2D-FFT"
    }

    fn sequential(&self) -> FftOutput {
        let mut m = self.generate_matrix();
        fft2d_sequential(&mut m, self.n);
        let flat: Vec<f64> = m.iter().flat_map(|&(re, im)| [re, im]).collect();
        FftOutput {
            checksum: fnv1a_f64(&flat),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> FftOutput {
        self.validate();
        node.advise_direct_route();
        let n = self.n;
        let p = node.nprocs();
        let me = node.rank();
        let my_range = block_range(n, p, me);

        // Each node generates its own rows (deterministic by index).
        let full = self.generate_matrix();
        let mut my_rows: Vec<Vec<Complex>> = my_range
            .clone()
            .map(|r| full[r * n..(r + 1) * n].to_vec())
            .collect();

        // Pass 1: FFT my rows.
        for row in &mut my_rows {
            fft_inplace(row, false);
        }
        node.compute(fft_work(n).times(my_rows.len() as u64));

        // Transpose, FFT the former columns, transpose back.
        let mut cols = distributed_transpose(node, my_rows, n, TAG_TRANSPOSE_A);
        for row in &mut cols {
            fft_inplace(row, false);
        }
        node.compute(fft_work(n).times(cols.len() as u64));
        let my_rows = distributed_transpose(node, cols, n, TAG_TRANSPOSE_B);

        // Collect the spectrum at rank 0 and checksum the full matrix in
        // row order — identical to the sequential reference regardless of
        // the partitioning — then broadcast the checksum.
        if me == 0 {
            let mut full_out: Vec<Vec<Complex>> = vec![Vec::new(); n];
            for (i, row) in my_rows.into_iter().enumerate() {
                full_out[my_range.start + i] = row;
            }
            for r in 1..p {
                let msg = node
                    .recv(Some(r), Some(TAG_GATHER))
                    .expect("spectrum gather");
                let src_range = block_range(n, p, msg.src);
                for (i, row) in decode_block(msg.data).into_iter().enumerate() {
                    full_out[src_range.start + i] = row;
                }
            }
            let flat: Vec<f64> = full_out
                .iter()
                .flatten()
                .flat_map(|&(re, im)| [re, im])
                .collect();
            let h = fnv1a_f64(&flat);
            let mut wb = MsgWriter::new();
            wb.put_u64(h);
            node.broadcast(0, wb.freeze()).expect("checksum bcast");
            FftOutput { checksum: h }
        } else {
            node.send(0, TAG_GATHER, encode_block(&my_rows))
                .expect("spectrum send");
            let data = node
                .broadcast(0, bytes::Bytes::new())
                .expect("checksum bcast");
            FftOutput {
                checksum: MsgReader::new(data).get_u64().expect("checksum decode"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn fft_matches_naive_dft() {
        let n = 8;
        let input: Vec<Complex> = (0..n).map(|i| (i as f64, -(i as f64) / 2.0)).collect();
        let mut fast = input.clone();
        fft_inplace(&mut fast, false);
        for (k, bin) in fast.iter().enumerate() {
            let (mut re, mut im) = (0.0, 0.0);
            for (j, &(xr, xi)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                re += xr * ang.cos() - xi * ang.sin();
                im += xr * ang.sin() + xi * ang.cos();
            }
            assert!((bin.0 - re).abs() < 1e-9, "re[{k}]");
            assert!((bin.1 - im).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_inverse_property() {
        let mut data: Vec<Complex> = (0..32).map(|i| ((i % 7) as f64, (i % 3) as f64)).collect();
        let original = data.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for ((ar, ai), (br, bi)) in original.iter().zip(
            data.iter()
                .map(|&(re, im)| (re / 32.0, im / 32.0))
                .collect::<Vec<_>>()
                .iter(),
        ) {
            assert!((ar - br).abs() < 1e-9 && (ai - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn distributed_matches_sequential_for_all_tools() {
        let w = Fft2d::small();
        let expect = w.sequential();
        for tool in ToolKind::all() {
            for procs in [1, 2, 4] {
                let cfg = SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs);
                let out = run_workload(&w, &cfg).unwrap();
                assert_eq!(out.results[0], expect, "{tool} x{procs}");
                // Every rank agrees on the checksum.
                for r in &out.results {
                    assert_eq!(r, &expect, "{tool} x{procs}");
                }
            }
        }
    }

    #[test]
    fn communication_dominates_at_small_sizes() {
        // The paper's FFT curves flatten or rise with P on slow networks
        // (Figure 8): the problem is too small to amortize messaging.
        let w = Fft2d::paper();
        let t1 = run_workload(
            &w,
            &SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::P4, 1),
        )
        .unwrap()
        .elapsed;
        let t8 = run_workload(
            &w,
            &SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::P4, 8),
        )
        .unwrap()
        .elapsed;
        assert!(
            t8.as_secs_f64() > t1.as_secs_f64(),
            "expected comm-bound rise on Ethernet: t1={t1} t8={t8}"
        );
    }
}
