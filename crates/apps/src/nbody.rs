//! N-body simulation (Table 2, simulation class).
//!
//! All-pairs gravitational accelerations computed with the classic
//! systolic ring: particle blocks circulate for `P - 1` steps so every
//! node sees every block, then positions advance one leapfrog step.

use crate::util::{fnv1a_f64, hash64, unit_f64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const SOFTENING: f64 = 1e-3;
const DT: f64 = 1e-2;

/// N-body workload: `n` particles, `steps` leapfrog steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NBody {
    /// Number of particles.
    pub n: usize,
    /// Time steps.
    pub steps: usize,
    /// Seed for initial conditions.
    pub seed: u64,
}

impl NBody {
    /// A representative workload size.
    pub fn paper() -> NBody {
        NBody {
            n: 1024,
            steps: 4,
            seed: 55,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> NBody {
        NBody {
            n: 48,
            steps: 2,
            seed: 55,
        }
    }

    /// Initial `(x, y, mass)` of particle `i`.
    fn particle(&self, i: usize) -> (f64, f64, f64) {
        let h1 = hash64(self.seed.wrapping_add(i as u64 * 3));
        let h2 = hash64(self.seed.wrapping_add(i as u64 * 3 + 1));
        let h3 = hash64(self.seed.wrapping_add(i as u64 * 3 + 2));
        (
            unit_f64(h1) * 2.0 - 1.0,
            unit_f64(h2) * 2.0 - 1.0,
            unit_f64(h3) * 0.9 + 0.1,
        )
    }
}

/// Acceleration on each particle of `mine` due to all particles of
/// `others` (skipping self-interaction by index identity).
fn accumulate(
    mine: &[(f64, f64, f64)],
    my_ids: &[usize],
    others: &[(f64, f64, f64)],
    other_ids: &[usize],
    acc: &mut [(f64, f64)],
) {
    for (k, &(x, y, _m)) in mine.iter().enumerate() {
        let (mut ax, mut ay) = acc[k];
        for (j, &(ox, oy, om)) in others.iter().enumerate() {
            if my_ids[k] == other_ids[j] {
                continue;
            }
            let dx = ox - x;
            let dy = oy - y;
            let d2 = dx * dx + dy * dy + SOFTENING;
            let inv = om / (d2 * d2.sqrt());
            ax += dx * inv;
            ay += dy * inv;
        }
        acc[k] = (ax, ay);
    }
}

/// Output: checksum over final positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NBodyOutput {
    /// FNV-1a over the final `(x, y)` coordinates in particle order.
    pub checksum: u64,
}

impl Workload for NBody {
    type Output = NBodyOutput;

    fn name(&self) -> &'static str {
        "N-body Simulation"
    }

    fn sequential(&self) -> NBodyOutput {
        let mut parts: Vec<(f64, f64, f64)> = (0..self.n).map(|i| self.particle(i)).collect();
        let mut vel = vec![(0.0f64, 0.0f64); self.n];
        let ids: Vec<usize> = (0..self.n).collect();
        for _ in 0..self.steps {
            let mut acc = vec![(0.0f64, 0.0f64); self.n];
            accumulate(&parts, &ids, &parts, &ids, &mut acc);
            for i in 0..self.n {
                vel[i].0 += acc[i].0 * DT;
                vel[i].1 += acc[i].1 * DT;
                parts[i].0 += vel[i].0 * DT;
                parts[i].1 += vel[i].1 * DT;
            }
        }
        let flat: Vec<f64> = parts.iter().flat_map(|&(x, y, _)| [x, y]).collect();
        NBodyOutput {
            checksum: fnv1a_f64(&flat),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> NBodyOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let range = block_range(self.n, p, me);
        let mut mine: Vec<(f64, f64, f64)> = range.clone().map(|i| self.particle(i)).collect();
        let mut vel = vec![(0.0f64, 0.0f64); mine.len()];
        let my_ids: Vec<usize> = range.clone().collect();

        for _ in 0..self.steps {
            // Systolic ring: circulate (ids, particles) blocks until every
            // node holds the full particle set, then accumulate in global
            // particle order — bitwise identical to the sequential pass
            // for any processor count.
            let mut full = vec![(0.0f64, 0.0f64, 0.0f64); self.n];
            for (k, &part) in mine.iter().enumerate() {
                full[range.start + k] = part;
            }
            let mut ring_block = mine.clone();
            let mut ring_ids = my_ids.clone();
            for _ in 1..p {
                let mut w = MsgWriter::new();
                w.put_u32_slice(&ring_ids.iter().map(|&i| i as u32).collect::<Vec<_>>());
                let flat: Vec<f64> = ring_block.iter().flat_map(|&(x, y, m)| [x, y, m]).collect();
                w.put_f64_slice(&flat);
                let data = node.ring_shift(w.freeze()).expect("ring shift");
                let mut r = MsgReader::new(data);
                ring_ids = r
                    .get_u32_slice()
                    .expect("ids")
                    .into_iter()
                    .map(|i| i as usize)
                    .collect();
                ring_block = r
                    .get_f64_slice()
                    .expect("parts")
                    .chunks_exact(3)
                    .map(|c| (c[0], c[1], c[2]))
                    .collect();
                for (k, &part) in ring_block.iter().enumerate() {
                    full[ring_ids[k]] = part;
                }
            }
            let all_ids: Vec<usize> = (0..self.n).collect();
            let mut acc = vec![(0.0f64, 0.0f64); mine.len()];
            accumulate(&mine, &my_ids, &full, &all_ids, &mut acc);
            node.compute(Work::flops(12 * (mine.len() * self.n) as u64));
            for i in 0..mine.len() {
                vel[i].0 += acc[i].0 * DT;
                vel[i].1 += acc[i].1 * DT;
                mine[i].0 += vel[i].0 * DT;
                mine[i].1 += vel[i].1 * DT;
            }
            node.compute(Work::flops(8 * mine.len() as u64));
        }

        // Gather final positions at rank 0, broadcast the checksum.
        if me == 0 {
            let mut all = vec![(0.0f64, 0.0f64); self.n];
            for (k, &(x, y, _)) in mine.iter().enumerate() {
                all[range.start + k] = (x, y);
            }
            for _ in 1..p {
                let msg = node.recv(None, Some(170)).expect("pos gather");
                let rr = block_range(self.n, p, msg.src);
                let flat = MsgReader::new(msg.data).get_f64_slice().expect("pos");
                for (k, c) in flat.chunks_exact(2).enumerate() {
                    all[rr.start + k] = (c[0], c[1]);
                }
            }
            let flat: Vec<f64> = all.iter().flat_map(|&(x, y)| [x, y]).collect();
            let h = fnv1a_f64(&flat);
            let mut w = MsgWriter::new();
            w.put_u64(h);
            node.broadcast(0, w.freeze()).expect("sum bcast");
            NBodyOutput { checksum: h }
        } else {
            let flat: Vec<f64> = mine.iter().flat_map(|&(x, y, _)| [x, y]).collect();
            let mut w = MsgWriter::new();
            w.put_f64_slice(&flat);
            node.send(0, 170, w.freeze()).expect("pos send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("sum bcast");
            NBodyOutput {
                checksum: MsgReader::new(data).get_u64().expect("sum"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn two_bodies_attract() {
        let mine = vec![(0.0, 0.0, 1.0)];
        let others = vec![(1.0, 0.0, 1.0)];
        let mut acc = vec![(0.0, 0.0)];
        accumulate(&mine, &[0], &others, &[1], &mut acc);
        assert!(acc[0].0 > 0.0, "attraction must pull right");
        assert!(acc[0].1.abs() < 1e-12);
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = NBody::small();
        let expect = w.sequential();
        for procs in [1, 2, 4] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::PVM, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }
}
