//! Cryptology (Table 2, numerical class).
//!
//! Known-plaintext key search over a toy 24-bit Feistel cipher: the
//! keyspace is block-partitioned, every node tests its range, and the
//! (unique) matching key is combined with a min-reduction. Perfectly
//! parallel integer work.

use crate::util::hash64;
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_FOUND: u32 = 230;

/// Key-search workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySearch {
    /// Keyspace size (search covers keys `0..keyspace`).
    pub keyspace: u32,
    /// The hidden key (must be below `keyspace`).
    pub secret: u32,
    /// Plaintext block to match.
    pub plaintext: u32,
}

impl KeySearch {
    /// A representative workload size.
    pub fn paper() -> KeySearch {
        KeySearch {
            keyspace: 1 << 22,
            secret: 2_718_281,
            plaintext: 0x00C0FFEE,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> KeySearch {
        KeySearch {
            keyspace: 1 << 14,
            secret: 12_345,
            plaintext: 0x00C0FFEE,
        }
    }

    /// Four-round toy Feistel over 24-bit blocks.
    pub fn encrypt(key: u32, block: u32) -> u32 {
        let mut l = (block >> 12) & 0xFFF;
        let mut r = block & 0xFFF;
        for round in 0..4u32 {
            let f =
                (hash64(((key as u64) << 16) | ((r as u64) << 3) | round as u64) & 0xFFF) as u32;
            let nl = r;
            r = l ^ f;
            l = nl;
        }
        (l << 12) | r
    }

    fn ciphertext(&self) -> u32 {
        Self::encrypt(self.secret, self.plaintext)
    }

    fn search_range(&self, range: std::ops::Range<usize>) -> Option<u32> {
        let target = self.ciphertext();
        let mut found: Option<u32> = None;
        for k in range {
            if Self::encrypt(k as u32, self.plaintext) == target {
                found = Some(match found {
                    None => k as u32,
                    Some(prev) => prev.min(k as u32),
                });
            }
        }
        found
    }
}

/// Output: the lowest matching key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySearchOutput {
    /// The recovered key (`u32::MAX` if none matched).
    pub key: u32,
}

impl Workload for KeySearch {
    type Output = KeySearchOutput;

    fn name(&self) -> &'static str {
        "Cryptology"
    }

    fn sequential(&self) -> KeySearchOutput {
        KeySearchOutput {
            key: self
                .search_range(0..self.keyspace as usize)
                .unwrap_or(u32::MAX),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> KeySearchOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let range = block_range(self.keyspace as usize, p, me);
        let tested = range.len() as u64;
        let found = self.search_range(range).unwrap_or(u32::MAX);
        // ~4 rounds x hash+xor per key trial.
        node.compute(Work::int_ops(tested * 40));

        if me == 0 {
            let mut best = found;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_FOUND)).expect("found gather");
                best = best.min(MsgReader::new(msg.data).get_u32().expect("found"));
            }
            let mut w = MsgWriter::new();
            w.put_u32(best);
            node.broadcast(0, w.freeze()).expect("found bcast");
            KeySearchOutput { key: best }
        } else {
            let mut w = MsgWriter::new();
            w.put_u32(found);
            node.send(0, TAG_FOUND, w.freeze()).expect("found send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("found bcast");
            KeySearchOutput {
                key: MsgReader::new(data).get_u32().expect("found"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn encryption_is_deterministic_and_key_sensitive() {
        let c1 = KeySearch::encrypt(1, 0xABCDE);
        let c2 = KeySearch::encrypt(2, 0xABCDE);
        assert_eq!(c1, KeySearch::encrypt(1, 0xABCDE));
        assert_ne!(c1, c2);
    }

    #[test]
    fn sequential_search_recovers_key() {
        let w = KeySearch::small();
        assert_eq!(w.sequential().key, w.secret);
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = KeySearch::small();
        for procs in [1, 2, 4] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::SP1_SWITCH, ToolKind::P4, procs),
            )
            .unwrap();
            assert_eq!(out.results[0].key, w.secret, "x{procs}");
        }
    }
}
