//! Branch and bound (Table 2, simulation/optimization class).
//!
//! 0/1 knapsack solved exactly by depth-first branch-and-bound with a
//! fractional upper bound. The first `log2`-ish levels of the decision
//! tree are statically partitioned across nodes; a max-combine yields the
//! optimum.

use crate::util::hash64;
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_BEST: u32 = 190;

/// Branch-and-bound knapsack workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knapsack {
    /// Number of items.
    pub items: usize,
    /// Levels of the decision tree partitioned across nodes.
    pub split_levels: usize,
    /// Seed for weights/values.
    pub seed: u64,
}

impl Knapsack {
    /// A representative workload size.
    pub fn paper() -> Knapsack {
        Knapsack {
            items: 30,
            split_levels: 5,
            seed: 71,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> Knapsack {
        Knapsack {
            items: 16,
            split_levels: 3,
            seed: 71,
        }
    }

    /// `(weights, values, capacity)`, items sorted by value density
    /// (required by the fractional bound).
    pub fn instance(&self) -> (Vec<u32>, Vec<u32>, u64) {
        let mut items: Vec<(u32, u32)> = (0..self.items)
            .map(|i| {
                let w = 1 + (hash64(self.seed.wrapping_add(i as u64 * 2)) % 100) as u32;
                let v = 1 + (hash64(self.seed.wrapping_add(i as u64 * 2 + 1)) % 100) as u32;
                (w, v)
            })
            .collect();
        items.sort_by(|a, b| {
            (b.1 as u64 * a.0 as u64)
                .cmp(&(a.1 as u64 * b.0 as u64))
                .then(a.0.cmp(&b.0))
        });
        let total_w: u64 = items.iter().map(|&(w, _)| w as u64).sum();
        let weights = items.iter().map(|&(w, _)| w).collect();
        let values = items.iter().map(|&(_, v)| v).collect();
        (weights, values, total_w / 2)
    }
}

/// Fractional (LP) upper bound from item `idx` with `cap` remaining.
fn upper_bound(weights: &[u32], values: &[u32], idx: usize, cap: u64, value: u64) -> f64 {
    let mut bound = value as f64;
    let mut cap = cap;
    for i in idx..weights.len() {
        if weights[i] as u64 <= cap {
            cap -= weights[i] as u64;
            bound += values[i] as f64;
        } else {
            bound += values[i] as f64 * cap as f64 / weights[i] as f64;
            break;
        }
    }
    bound
}

fn dfs(
    weights: &[u32],
    values: &[u32],
    idx: usize,
    cap: u64,
    value: u64,
    best: &mut u64,
    expanded: &mut u64,
) {
    *expanded += 1;
    if value > *best {
        *best = value;
    }
    if idx == weights.len() || upper_bound(weights, values, idx, cap, value) <= *best as f64 {
        return;
    }
    if weights[idx] as u64 <= cap {
        dfs(
            weights,
            values,
            idx + 1,
            cap - weights[idx] as u64,
            value + values[idx] as u64,
            best,
            expanded,
        );
    }
    dfs(weights, values, idx + 1, cap, value, best, expanded);
}

/// Output: the optimal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnapsackOutput {
    /// Maximum attainable value.
    pub best: u64,
}

/// Exact dynamic-programming reference (for tests).
pub fn dp_reference(weights: &[u32], values: &[u32], cap: u64) -> u64 {
    let mut table = vec![0u64; cap as usize + 1];
    for i in 0..weights.len() {
        let w = weights[i] as usize;
        for c in (w..=cap as usize).rev() {
            table[c] = table[c].max(table[c - w] + values[i] as u64);
        }
    }
    table[cap as usize]
}

impl Workload for Knapsack {
    type Output = KnapsackOutput;

    fn name(&self) -> &'static str {
        "Branch and Bound"
    }

    fn sequential(&self) -> KnapsackOutput {
        let (w, v, cap) = self.instance();
        let mut best = 0;
        let mut expanded = 0;
        dfs(&w, &v, 0, cap, 0, &mut best, &mut expanded);
        KnapsackOutput { best }
    }

    fn run(&self, node: &mut Node<'_>) -> KnapsackOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let (weights, values, cap) = self.instance();
        let levels = self.split_levels.min(self.items);
        let subtrees = 1usize << levels;
        let range = block_range(subtrees, p, me);

        let mut best = 0u64;
        let mut expanded = 0u64;
        for mask in range {
            // Fix the first `levels` take/skip decisions by the mask bits.
            let mut capacity = cap;
            let mut value = 0u64;
            let mut feasible = true;
            for bit in 0..levels {
                if mask >> bit & 1 == 1 {
                    let w = weights[bit] as u64;
                    if w > capacity {
                        feasible = false;
                        break;
                    }
                    capacity -= w;
                    value += values[bit] as u64;
                }
            }
            if feasible {
                dfs(
                    &weights,
                    &values,
                    levels,
                    capacity,
                    value,
                    &mut best,
                    &mut expanded,
                );
            }
        }
        node.compute(Work {
            flops: expanded * 4,
            int_ops: expanded * 10,
            bytes_moved: 0,
        });

        // Max-combine.
        if me == 0 {
            let mut global = best;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_BEST)).expect("best gather");
                global = global.max(MsgReader::new(msg.data).get_u64().expect("best"));
            }
            let mut w = MsgWriter::new();
            w.put_u64(global);
            node.broadcast(0, w.freeze()).expect("best bcast");
            KnapsackOutput { best: global }
        } else {
            let mut w = MsgWriter::new();
            w.put_u64(best);
            node.send(0, TAG_BEST, w.freeze()).expect("best send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("best bcast");
            KnapsackOutput {
                best: MsgReader::new(data).get_u64().expect("best"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn branch_and_bound_matches_dp() {
        let w = Knapsack::small();
        let (ws, vs, cap) = w.instance();
        assert_eq!(w.sequential().best, dp_reference(&ws, &vs, cap));
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = Knapsack::small();
        let expect = w.sequential();
        for procs in [1, 2, 4] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::EXPRESS, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }
}
