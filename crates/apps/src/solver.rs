//! Linear equation solver (Table 2, numerical class).
//!
//! Jacobi iteration on a 1-D Poisson-like tridiagonal system, unknowns
//! block-distributed with halo exchange between ring neighbours each
//! sweep — the canonical nearest-neighbour communication pattern.

use crate::util::{hash64, unit_f64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_HALO_LEFT: u32 = 160;
const TAG_HALO_RIGHT: u32 = 161;
const TAG_NORM: u32 = 162;

/// Jacobi solver workload for `-x[i-1] + 4 x[i] - x[i+1] = b[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JacobiSolver {
    /// Number of unknowns.
    pub n: usize,
    /// Fixed number of sweeps (kept fixed for determinism across P).
    pub sweeps: usize,
    /// Seed for the right-hand side.
    pub seed: u64,
}

impl JacobiSolver {
    /// A representative workload size.
    pub fn paper() -> JacobiSolver {
        JacobiSolver {
            n: 40_000,
            sweeps: 50,
            seed: 41,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> JacobiSolver {
        JacobiSolver {
            n: 200,
            sweeps: 20,
            seed: 41,
        }
    }

    fn rhs(&self, i: usize) -> f64 {
        unit_f64(hash64(self.seed.wrapping_add(i as u64))) * 2.0 - 1.0
    }
}

/// Output: the max-norm residual after the fixed sweep count, rounded to
/// a bit-stable representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOutput {
    /// `||b - A x||_inf` after the final sweep.
    pub residual: f64,
}

fn jacobi_sweep(x: &[f64], b: &[f64], left: f64, right: f64) -> Vec<f64> {
    let n = x.len();
    let mut next = vec![0.0f64; n];
    for i in 0..n {
        let xm = if i == 0 { left } else { x[i - 1] };
        let xp = if i + 1 == n { right } else { x[i + 1] };
        next[i] = (b[i] + xm + xp) / 4.0;
    }
    next
}

fn residual(x: &[f64], b: &[f64], left: f64, right: f64) -> f64 {
    let n = x.len();
    let mut worst = 0.0f64;
    for i in 0..n {
        let xm = if i == 0 { left } else { x[i - 1] };
        let xp = if i + 1 == n { right } else { x[i + 1] };
        let r = (b[i] + xm + xp - 4.0 * x[i]).abs();
        worst = worst.max(r);
    }
    worst
}

impl Workload for JacobiSolver {
    type Output = SolverOutput;

    fn name(&self) -> &'static str {
        "Linear Equation Solver"
    }

    fn sequential(&self) -> SolverOutput {
        let b: Vec<f64> = (0..self.n).map(|i| self.rhs(i)).collect();
        let mut x = vec![0.0f64; self.n];
        for _ in 0..self.sweeps {
            x = jacobi_sweep(&x, &b, 0.0, 0.0);
        }
        SolverOutput {
            residual: residual(&x, &b, 0.0, 0.0),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> SolverOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let range = block_range(self.n, p, me);
        let b: Vec<f64> = range.clone().map(|i| self.rhs(i)).collect();
        let mut x = vec![0.0f64; range.len()];
        let (mut left, mut right) = (0.0f64, 0.0f64);

        let exchange = |node: &mut Node<'_>, x: &[f64], left: &mut f64, right: &mut f64| {
            if me > 0 && !x.is_empty() {
                let mut w = MsgWriter::new();
                w.put_f64(x[0]);
                node.send(me - 1, TAG_HALO_LEFT, w.freeze()).expect("halo");
            }
            if me + 1 < p && !x.is_empty() {
                let mut w = MsgWriter::new();
                w.put_f64(*x.last().expect("nonempty"));
                node.send(me + 1, TAG_HALO_RIGHT, w.freeze()).expect("halo");
            }
            if me + 1 < p {
                let msg = node.recv(Some(me + 1), Some(TAG_HALO_LEFT)).expect("halo");
                *right = MsgReader::new(msg.data).get_f64().expect("halo decode");
            }
            if me > 0 {
                let msg = node.recv(Some(me - 1), Some(TAG_HALO_RIGHT)).expect("halo");
                *left = MsgReader::new(msg.data).get_f64().expect("halo decode");
            }
        };

        for _ in 0..self.sweeps {
            exchange(node, &x, &mut left, &mut right);
            x = jacobi_sweep(&x, &b, left, right);
            node.compute(Work::flops(4 * x.len() as u64));
        }
        // Refresh halos so boundary residual entries see the final
        // neighbour values, exactly like the sequential reference.
        exchange(node, &x, &mut left, &mut right);

        let local = residual(&x, &b, left, right);
        node.compute(Work::flops(5 * x.len() as u64));
        // Max-combine via gather at 0 + broadcast (portable across tools).
        if me == 0 {
            let mut worst = local;
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_NORM)).expect("norm gather");
                worst = worst.max(MsgReader::new(msg.data).get_f64().expect("norm"));
            }
            let mut w = MsgWriter::new();
            w.put_f64(worst);
            node.broadcast(0, w.freeze()).expect("norm bcast");
            SolverOutput { residual: worst }
        } else {
            let mut w = MsgWriter::new();
            w.put_f64(local);
            node.send(0, TAG_NORM, w.freeze()).expect("norm send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("norm bcast");
            SolverOutput {
                residual: MsgReader::new(data).get_f64().expect("norm decode"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn jacobi_converges() {
        let w = JacobiSolver {
            n: 50,
            sweeps: 200,
            seed: 1,
        };
        let out = w.sequential();
        assert!(out.residual < 1e-6, "residual {}", out.residual);
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = JacobiSolver::small();
        let expect = w.sequential();
        for procs in [1, 2, 4] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, procs),
            )
            .unwrap();
            // Halo boundaries are identical values, so the iteration is
            // exactly the sequential one.
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }

    #[test]
    fn more_sweeps_lower_residual() {
        let short = JacobiSolver {
            sweeps: 5,
            ..JacobiSolver::small()
        }
        .sequential();
        let long = JacobiSolver {
            sweeps: 80,
            ..JacobiSolver::small()
        }
        .sequential();
        assert!(long.residual < short.residual);
    }
}
