//! Distributed make (Table 2, utilities class).
//!
//! A master-worker build scheduler: a synthetic dependency DAG of
//! compilation tasks is executed by list scheduling — the master hands a
//! ready task to the first idle worker, workers "compile" (charge work)
//! and report completion. Exercises dynamic master-worker communication,
//! unlike the static SPMD workloads.

use crate::util::hash64;
use crate::workload::Workload;
use bytes::Bytes;
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_TASK: u32 = 260;
const TAG_DONE: u32 = 261;
const TAG_SHUTDOWN: u32 = 262;
const TAG_RESULT: u32 = 263;

/// Distributed-make workload: a layered synthetic build DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedMake {
    /// Number of tasks (compilation units).
    pub tasks: usize,
    /// DAG layers (tasks in layer `k` depend on 1-2 tasks of layer `k-1`).
    pub layers: usize,
    /// Seed for task durations and dependencies.
    pub seed: u64,
}

impl DistributedMake {
    /// A representative workload size.
    pub fn paper() -> DistributedMake {
        DistributedMake {
            tasks: 400,
            layers: 8,
            seed: 131,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> DistributedMake {
        DistributedMake {
            tasks: 40,
            layers: 4,
            seed: 131,
        }
    }

    /// `(duration_mflop, deps)` per task, topologically ordered.
    pub fn dag(&self) -> Vec<(u64, Vec<usize>)> {
        let per_layer = (self.tasks / self.layers).max(1);
        (0..self.tasks)
            .map(|t| {
                let layer = (t / per_layer).min(self.layers - 1);
                let dur = 1 + hash64(self.seed.wrapping_add(t as u64)) % 8;
                let mut deps = Vec::new();
                if layer > 0 {
                    let prev_start = (layer - 1) * per_layer;
                    let prev_len = per_layer.min(self.tasks - prev_start);
                    let d1 = prev_start
                        + (hash64(self.seed ^ (t as u64) << 1) % prev_len as u64) as usize;
                    deps.push(d1);
                    if hash64(self.seed ^ (t as u64) << 2).is_multiple_of(2) {
                        let d2 = prev_start
                            + (hash64(self.seed ^ (t as u64) << 3) % prev_len as u64) as usize;
                        if d2 != d1 {
                            deps.push(d2);
                        }
                    }
                }
                (dur, deps)
            })
            .collect()
    }
}

/// Output: tasks built and a schedule-independent checksum of total work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MakeOutput {
    /// Tasks completed.
    pub built: u64,
    /// Sum of task durations (verifies every task ran exactly once).
    pub total_mflop: u64,
}

impl Workload for DistributedMake {
    type Output = MakeOutput;

    fn name(&self) -> &'static str {
        "Distributed Make"
    }

    fn sequential(&self) -> MakeOutput {
        let dag = self.dag();
        MakeOutput {
            built: dag.len() as u64,
            total_mflop: dag.iter().map(|(d, _)| *d).sum(),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> MakeOutput {
        node.advise_direct_route();
        let p = node.nprocs();
        let me = node.rank();
        let dag = self.dag();

        if p == 1 {
            // Degenerate single node: build everything locally.
            for (dur, _) in &dag {
                node.compute(Work::flops(dur * 1_000_000));
            }
            return self.sequential();
        }

        if me == 0 {
            // Master: list scheduling over ready tasks.
            let n = dag.len();
            let mut remaining_deps: Vec<usize> = dag.iter().map(|(_, d)| d.len()).collect();
            let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (t, (_, deps)) in dag.iter().enumerate() {
                for &d in deps {
                    dependents[d].push(t);
                }
            }
            let mut ready: Vec<usize> = (0..n).filter(|&t| remaining_deps[t] == 0).collect();
            ready.reverse(); // pop from the front of the topological order
            let mut idle: Vec<usize> = (1..p).collect();
            let mut outstanding = 0usize;
            let mut done_count = 0u64;
            let mut total = 0u64;

            while done_count < n as u64 {
                // Assign while we can.
                while let (Some(&t), true) = (ready.last(), !idle.is_empty()) {
                    ready.pop();
                    let worker = idle.pop().expect("idle nonempty");
                    let mut w = MsgWriter::new();
                    w.put_u32(t as u32);
                    w.put_u64(dag[t].0);
                    node.send(worker, TAG_TASK, w.freeze()).expect("task send");
                    outstanding += 1;
                }
                if outstanding == 0 {
                    assert!(!ready.is_empty(), "scheduler stalled with work pending");
                    continue;
                }
                // Wait for a completion.
                let msg = node.recv(None, Some(TAG_DONE)).expect("done recv");
                let mut r = MsgReader::new(msg.data);
                let t = r.get_u32().expect("task id") as usize;
                total += r.get_u64().expect("dur");
                outstanding -= 1;
                done_count += 1;
                idle.push(msg.src);
                for &dep in &dependents[t] {
                    remaining_deps[dep] -= 1;
                    if remaining_deps[dep] == 0 {
                        ready.push(dep);
                    }
                }
            }
            // Shut workers down and collect their build counts.
            let mut built = 0u64;
            for wkr in 1..p {
                node.send(wkr, TAG_SHUTDOWN, Bytes::new())
                    .expect("shutdown");
            }
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_RESULT)).expect("result recv");
                built += MsgReader::new(msg.data).get_u64().expect("built");
            }
            MakeOutput {
                built,
                total_mflop: total,
            }
        } else {
            // Worker: build until shutdown.
            let mut built = 0u64;
            loop {
                let msg = node.recv(Some(0), None).expect("worker recv");
                match msg.tag {
                    TAG_SHUTDOWN => break,
                    TAG_TASK => {
                        let mut r = MsgReader::new(msg.data);
                        let t = r.get_u32().expect("task id");
                        let dur = r.get_u64().expect("dur");
                        node.compute(Work::flops(dur * 1_000_000));
                        built += 1;
                        let mut w = MsgWriter::new();
                        w.put_u32(t);
                        w.put_u64(dur);
                        node.send(0, TAG_DONE, w.freeze()).expect("done send");
                    }
                    other => panic!("unexpected tag {other} at worker"),
                }
            }
            let mut w = MsgWriter::new();
            w.put_u64(built);
            node.send(0, TAG_RESULT, w.freeze()).expect("result send");
            MakeOutput {
                built: 0,
                total_mflop: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn dag_is_topologically_ordered() {
        let w = DistributedMake::small();
        for (t, (_, deps)) in w.dag().iter().enumerate() {
            for &d in deps {
                assert!(d < t, "task {t} depends on later task {d}");
            }
        }
    }

    #[test]
    fn every_task_builds_exactly_once() {
        let w = DistributedMake::small();
        let expect = w.sequential();
        for procs in [1, 2, 4] {
            let out = run_workload(
                &w,
                &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, procs),
            )
            .unwrap();
            assert_eq!(out.results[0], expect, "x{procs}");
        }
    }

    #[test]
    fn more_workers_build_faster() {
        let w = DistributedMake::paper();
        let t2 = run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, 2))
            .unwrap()
            .elapsed;
        let t8 = run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, 8))
            .unwrap()
            .elapsed;
        assert!(t8.as_secs_f64() < t2.as_secs_f64(), "t2={t2} t8={t8}");
    }
}
