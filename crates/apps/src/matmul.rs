//! Matrix multiplication (Table 2, numerical class).
//!
//! `C = A x B` with `A` distributed by row blocks and `B` broadcast to
//! all nodes — the standard 1995 workstation-cluster formulation. Real
//! `f64` arithmetic; results are bitwise identical across tools and
//! processor counts.

use crate::util::{fnv1a_f64, hash64, unit_f64};
use crate::workload::{block_range, Workload};
use pdceval_mpt::message::{MsgReader, MsgWriter};
use pdceval_mpt::node::Node;
use pdceval_simnet::work::Work;

const TAG_GATHER: u32 = 140;

/// Matrix multiplication workload: `n x n` dense `f64` matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatMul {
    /// Matrix dimension.
    pub n: usize,
    /// Seed for the synthetic matrices.
    pub seed: u64,
}

impl MatMul {
    /// A representative workload size.
    pub fn paper() -> MatMul {
        MatMul { n: 192, seed: 21 }
    }

    /// A small configuration for fast tests.
    pub fn small() -> MatMul {
        MatMul { n: 24, seed: 21 }
    }

    fn gen(&self, which: u64, i: usize) -> f64 {
        unit_f64(hash64(
            self.seed
                .wrapping_mul(0xC13F)
                .wrapping_add(which << 32)
                .wrapping_add(i as u64),
        )) * 2.0
            - 1.0
    }

    /// Generates matrix A (row-major).
    pub fn matrix_a(&self) -> Vec<f64> {
        (0..self.n * self.n).map(|i| self.gen(1, i)).collect()
    }

    /// Generates matrix B (row-major).
    pub fn matrix_b(&self) -> Vec<f64> {
        (0..self.n * self.n).map(|i| self.gen(2, i)).collect()
    }
}

fn multiply_rows(a_rows: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let rows = a_rows.len() / n;
    let mut c = vec![0.0f64; rows * n];
    for r in 0..rows {
        for k in 0..n {
            let aik = a_rows[r * n + k];
            for j in 0..n {
                c[r * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Output: checksum over C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatMulOutput {
    /// FNV-1a over C's bit patterns.
    pub checksum: u64,
}

impl Workload for MatMul {
    type Output = MatMulOutput;

    fn name(&self) -> &'static str {
        "Matrix Multiplication"
    }

    fn sequential(&self) -> MatMulOutput {
        let c = multiply_rows(&self.matrix_a(), &self.matrix_b(), self.n);
        MatMulOutput {
            checksum: fnv1a_f64(&c),
        }
    }

    fn run(&self, node: &mut Node<'_>) -> MatMulOutput {
        node.advise_direct_route();
        let n = self.n;
        let p = node.nprocs();
        let me = node.rank();
        let range = block_range(n, p, me);

        // B is broadcast from rank 0 (generated there, like input I/O).
        let b: Vec<f64> = if me == 0 {
            let b = self.matrix_b();
            let mut w = MsgWriter::with_capacity(4 + b.len() * 8);
            w.put_f64_slice(&b);
            node.broadcast(0, w.freeze()).expect("B bcast");
            b
        } else {
            let data = node.broadcast(0, bytes::Bytes::new()).expect("B bcast");
            MsgReader::new(data).get_f64_slice().expect("B decode")
        };

        // My rows of A, generated deterministically in place.
        let a_full = self.matrix_a();
        let a_rows = &a_full[range.start * n..range.end * n];
        let c_rows = multiply_rows(a_rows, &b, n);
        node.compute(Work::flops(2 * (range.len() * n * n) as u64));

        // Gather C at rank 0 and broadcast the checksum.
        if me == 0 {
            let mut c = vec![0.0f64; n * n];
            c[range.start * n..range.end * n].copy_from_slice(&c_rows);
            for _ in 1..p {
                let msg = node.recv(None, Some(TAG_GATHER)).expect("C gather");
                let rows = MsgReader::new(msg.data).get_f64_slice().expect("C decode");
                let rr = block_range(n, p, msg.src);
                c[rr.start * n..rr.end * n].copy_from_slice(&rows);
            }
            let h = fnv1a_f64(&c);
            let mut w = MsgWriter::new();
            w.put_u64(h);
            node.broadcast(0, w.freeze()).expect("sum bcast");
            MatMulOutput { checksum: h }
        } else {
            let mut w = MsgWriter::with_capacity(4 + c_rows.len() * 8);
            w.put_f64_slice(&c_rows);
            node.send(0, TAG_GATHER, w.freeze()).expect("C send");
            let data = node.broadcast(0, bytes::Bytes::new()).expect("sum bcast");
            MatMulOutput {
                checksum: MsgReader::new(data).get_u64().expect("sum decode"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::run_workload;
    use pdceval_mpt::runtime::SpmdConfig;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn multiply_identity_preserves() {
        let n = 4;
        let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut eye = vec![0.0; 16];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        assert_eq!(multiply_rows(&a, &eye, n), a);
    }

    #[test]
    fn distributed_matches_sequential() {
        let w = MatMul::small();
        let expect = w.sequential();
        for tool in [ToolKind::P4, ToolKind::PVM] {
            for procs in [1, 3] {
                let out =
                    run_workload(&w, &SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs)).unwrap();
                assert_eq!(out.results[0], expect, "{tool} x{procs}");
            }
        }
    }
}
