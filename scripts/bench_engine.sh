#!/usr/bin/env bash
# Regenerates BENCH_engine.json: events/sec of the discrete-event engine on
# the broadcast / ring / global-sum microbenches (64 procs), with speedups
# against the recorded seed-engine baseline. Each result also records the
# engine's scheduler counters — direct handoffs vs inline resumes (handoff
# ratio) and mailbox fast-path hits (hit rate) — so scheduler-behavior
# regressions show up even when throughput doesn't move. The JSON carries
# the same git_sha/timestamp provenance fields as the campaign results
# store, so bench output is comparable across PRs.
#
# Also runs the criterion engine bench group so per-bench wall-clock
# medians land in the same place (target/criterion_engine.json).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pdceval-bench

# Primary artifact: engine events/sec + speedup vs the pre-rework baseline.
./target/release/bench_engine --out BENCH_engine.json

# Secondary: criterion medians for the engine group (JSON via the shim's
# CRITERION_JSON hook).
CRITERION_JSON="$PWD/target/criterion_engine.json" \
    cargo bench -p pdceval-bench --bench engine

echo "--- BENCH_engine.json"
cat BENCH_engine.json
