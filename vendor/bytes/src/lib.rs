//! Minimal API-compatible shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` 1.x API it actually uses:
//! [`Bytes`] (cheaply cloneable immutable buffers), [`BytesMut`] (an
//! append-only builder), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the message codec needs. Semantics match the
//! real crate for this surface; anything else is intentionally absent.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous buffer of bytes.
///
/// Clones share the underlying allocation; slicing off the front (via
/// [`Buf::advance`] / [`Buf::copy_to_bytes`]) is zero-copy.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared {
        buf: Arc<Vec<u8>>,
        off: usize,
        len: usize,
    },
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Static(s) => s.len(),
            Repr::Shared { len, .. } => *len,
        }
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared { buf, off, len } => &buf[*off..*off + *len],
        }
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        match &self.repr {
            Repr::Static(s) => Bytes::from_static(&s[range]),
            Repr::Shared { buf, off, .. } => Bytes {
                repr: Repr::Shared {
                    buf: Arc::clone(buf),
                    off: off + range.start,
                    len: range.end - range.start,
                },
            },
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            repr: Repr::Shared {
                buf: Arc::new(v),
                off: 0,
                len,
            },
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Read cursor over a byte buffer (little-endian accessors only).
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads a `u8` and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `i32` and advances.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Removes the next `len` bytes, returning them as `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        match &mut self.repr {
            Repr::Static(s) => *s = &s[cnt..],
            Repr::Shared { off, len, .. } => {
                *off += cnt;
                *len -= cnt;
            }
        }
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Append cursor for building a byte buffer (little-endian writers only).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with a capacity hint.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-5);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i32_le(), -5);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.copy_to_bytes(3), Bytes::from_static(b"xyz"));
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        let c = b.slice(1..3);
        assert_eq!(&c[..], &[2, 3]);
    }

    #[test]
    fn static_bytes_are_zero_copy() {
        let mut s = Bytes::from_static(b"hello");
        s.advance(2);
        assert_eq!(&s[..], b"llo");
        assert_eq!(s.len(), 3);
    }
}
