//! Minimal API-compatible shim for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`, the
//! `Bencher::iter` closure protocol, and the `criterion_group!` /
//! `criterion_main!` macros. Each bench runs a short warm-up followed by
//! timed samples and reports min/median/mean wall-clock time.
//!
//! Setting `CRITERION_JSON=<path>` writes every result of the process as a
//! JSON array to `<path>` on exit — used by `scripts/bench_engine.sh` to
//! seed the repo's performance trajectory.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for parity with the real crate.
pub use std::hint::black_box;

/// Maximum wall-clock budget spent on a single bench function.
const BENCH_TIME_BUDGET: Duration = Duration::from_secs(3);

/// One completed benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, in nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over all samples, in nanoseconds per iteration.
    pub mean_ns: f64,
}

/// The top-level benchmark driver, collecting results across groups.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, 10, &id.to_string(), f);
        self
    }

    /// Prints a summary of all results and honours `CRITERION_JSON`.
    /// Called by `criterion_main!`; not part of the real criterion API.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!(
                    "  {{\"id\": {:?}, \"samples\": {}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}",
                    r.id, r.samples, r.min_ns, r.median_ns, r.mean_ns
                ));
            }
            out.push_str("\n]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: failed to write {path}: {e}");
            }
        }
    }

    fn record(&mut self, r: BenchResult) {
        println!(
            "bench {:<50} median {:>12} min {:>12} ({} samples)",
            r.id,
            fmt_ns(r.median_ns),
            fmt_ns(r.min_ns),
            r.samples
        );
        self.results.push(r);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.name.clone();
        let samples = self.sample_size;
        run_one(self.criterion, Some(&group), samples, &id.to_string(), f);
        self
    }

    /// Ends the group (kept for API parity; results are already recorded).
    pub fn finish(self) {}
}

fn run_one<F>(
    criterion: &mut Criterion,
    group: Option<&str>,
    sample_size: usize,
    id: &str,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        budget: BENCH_TIME_BUDGET,
        target_samples: sample_size,
    };
    f(&mut b);
    let mut ns: Vec<f64> = b.samples;
    if ns.is_empty() {
        // The closure never called iter(); record a zero result.
        ns.push(0.0);
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    criterion.record(BenchResult {
        id: full_id,
        samples: ns.len(),
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
    });
}

/// Passed to the bench closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, taking up to the configured number of samples
    /// within the time budget. Each sample is one call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (not recorded).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "g/noop");
        assert!(c.results[0].samples >= 1);
    }
}
