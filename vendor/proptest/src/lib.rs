//! Minimal API-compatible shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest API its tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` header), `any::<T>()`,
//! range strategies, tuple strategies, `collection::vec`, `prop_filter`,
//! `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: generation is driven by a fixed
//! deterministic per-test seed (derived from the test name), and failing
//! cases are **not shrunk** — the failing inputs are reported as-is via the
//! panic message of the underlying `assert!`.

use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic split-mix PRNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with a seed derived from `name` (the test
    /// function's name), so every test gets a stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Rejection-samples until `pred` holds (up to an attempt cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 candidates", self.reason);
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a random length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len.clone(), rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i32..5, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        /// Vec lengths respect their range and filters hold.
        #[test]
        fn vec_and_filter(
            v in collection::vec(any::<u8>(), 2..6),
            f in any::<f64>().prop_filter("finite", |x| x.is_finite()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(f.is_finite());
        }

        /// Tuple strategies generate element-wise.
        #[test]
        fn tuples(pair in (0u32..10, 10u64..20)) {
            prop_assert!(pair.0 < 10);
            prop_assert!((10..20).contains(&pair.1));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
