//! Property-based tests on the reproduction's core invariants.

use bytes::Bytes;
use pdc_tool_eval::apps::fft::{fft_inplace, Complex};
use pdc_tool_eval::apps::jpeg::{compress_strip, decompress_strip};
use pdc_tool_eval::apps::psrs::PsrsSort;
use pdc_tool_eval::apps::workload::{block_range, run_workload, Workload};
use pdc_tool_eval::core::score::Measurement;
use pdc_tool_eval::mpt::message::{MsgReader, MsgWriter};
use pdc_tool_eval::mpt::runtime::{run_spmd, SpmdConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;
use pdc_tool_eval::simnet::time::SimDuration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Typed payloads round-trip for arbitrary content.
    #[test]
    fn codec_round_trips(
        a in proptest::collection::vec(any::<i32>(), 0..200),
        b in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..100),
        c in proptest::collection::vec(any::<u8>(), 0..300),
        x in any::<u32>(),
        y in any::<u64>(),
    ) {
        let mut w = MsgWriter::new();
        w.put_u32(x);
        w.put_i32_slice(&a);
        w.put_u64(y);
        w.put_f64_slice(&b);
        w.put_bytes(&c);
        let mut r = MsgReader::new(w.freeze());
        prop_assert_eq!(r.get_u32().unwrap(), x);
        prop_assert_eq!(r.get_i32_slice().unwrap(), a);
        prop_assert_eq!(r.get_u64().unwrap(), y);
        prop_assert_eq!(r.get_f64_slice().unwrap(), b);
        prop_assert_eq!(&r.get_bytes().unwrap()[..], &c[..]);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Block partitions cover 0..n exactly, without gaps or overlap.
    #[test]
    fn block_ranges_partition(n in 0usize..10_000, p in 1usize..16) {
        let mut next = 0;
        for r in 0..p {
            let range = block_range(n, p, r);
            prop_assert_eq!(range.start, next);
            next = range.end;
        }
        prop_assert_eq!(next, n);
    }

    /// FFT followed by inverse FFT recovers the input (scaled by n).
    #[test]
    fn fft_inverse_recovers_input(
        raw in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..5)
    ) {
        // Pad to a power of two length >= 2.
        let n = raw.len().next_power_of_two().max(2);
        let mut data: Vec<Complex> = raw.clone();
        data.resize(n, (0.0, 0.0));
        let original = data.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (o, d) in original.iter().zip(&data) {
            prop_assert!((o.0 - d.0 / n as f64).abs() < 1e-6);
            prop_assert!((o.1 - d.1 / n as f64).abs() < 1e-6);
        }
    }

    /// JPEG codec: decompressing a compressed strip preserves shape and
    /// keeps per-pixel error within JPEG-like bounds for smooth content.
    #[test]
    fn jpeg_codec_bounded_error(seed in any::<u64>()) {
        let w = pdc_tool_eval::apps::jpeg::JpegCompression { width: 16, height: 16, seed };
        let img = w.generate_image();
        let enc = compress_strip(&img, 16, 16);
        let dec = decompress_strip(&enc, 16, 16);
        prop_assert_eq!(dec.len(), img.len());
        let mse: f64 = img.iter().zip(&dec)
            .map(|(&a, &b)| { let d = a as f64 - b as f64; d * d })
            .sum::<f64>() / img.len() as f64;
        prop_assert!(mse < 200.0, "mse {}", mse);
    }

    /// Relative scores are in [0, 1] and the fastest tool always gets 1.
    #[test]
    fn measurement_scores_are_normalized(
        t1 in 0.001f64..1000.0,
        t2 in 0.001f64..1000.0,
        t3 in 0.001f64..1000.0,
    ) {
        let m = Measurement::new("m", vec![
            (ToolKind::Express, Some(t1)),
            (ToolKind::P4, Some(t2)),
            (ToolKind::Pvm, Some(t3)),
        ]);
        let scores: Vec<f64> = ToolKind::all().iter().map(|&t| m.relative_score(t)).collect();
        for s in &scores {
            prop_assert!((0.0..=1.0).contains(s));
        }
        prop_assert!(scores.iter().any(|&s| (s - 1.0).abs() < 1e-12));
    }

    /// Simulated time arithmetic is consistent: chained holds sum exactly.
    #[test]
    fn sim_durations_sum(us in proptest::collection::vec(1u64..10_000, 1..20)) {
        let total: u64 = us.iter().sum();
        let summed: SimDuration = us.iter().map(|&u| SimDuration::from_micros(u)).sum();
        prop_assert_eq!(summed, SimDuration::from_micros(total));
    }
}

proptest! {
    // Simulation-backed properties are more expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PSRS produces the sorted permutation of its input for arbitrary
    /// seeds and any tool/processor combination.
    #[test]
    fn psrs_sorts_arbitrary_inputs(
        seed in any::<u64>(),
        procs in 1usize..5,
        tool_idx in 0usize..3,
    ) {
        let w = PsrsSort { keys: 600, seed };
        let expect = w.sequential();
        let tool = ToolKind::all()[tool_idx];
        let out = run_workload(&w, &SpmdConfig::new(Platform::SunAtmLan, tool, procs)).unwrap();
        prop_assert_eq!(out.results[0], expect);
    }

    /// Arbitrary payload bytes survive a round trip through any tool.
    #[test]
    fn payloads_survive_transit(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        tool_idx in 0usize..3,
    ) {
        let tool = ToolKind::all()[tool_idx];
        let sent = Bytes::from(payload.clone());
        let expect = payload;
        let out = run_spmd(&SpmdConfig::new(Platform::SunEthernet, tool, 2), move |node| {
            if node.rank() == 0 {
                node.send(1, 5, sent.clone()).unwrap();
                Vec::new()
            } else {
                node.recv(Some(0), Some(5)).unwrap().data.to_vec()
            }
        }).unwrap();
        prop_assert_eq!(&out.results[1], &expect);
    }
}
