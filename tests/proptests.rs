//! Property-based tests on the reproduction's core invariants.

use bytes::Bytes;
use pdc_tool_eval::apps::fft::{fft_inplace, Complex};
use pdc_tool_eval::apps::jpeg::{compress_strip, decompress_strip};
use pdc_tool_eval::apps::psrs::PsrsSort;
use pdc_tool_eval::apps::workload::{block_range, run_workload, Workload};
use pdc_tool_eval::core::score::Measurement;
use pdc_tool_eval::mpt::message::{MsgReader, MsgWriter};
use pdc_tool_eval::mpt::runtime::{run_spmd, SpmdConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;
use pdc_tool_eval::simnet::time::SimDuration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Typed payloads round-trip for arbitrary content.
    #[test]
    fn codec_round_trips(
        a in proptest::collection::vec(any::<i32>(), 0..200),
        b in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..100),
        c in proptest::collection::vec(any::<u8>(), 0..300),
        x in any::<u32>(),
        y in any::<u64>(),
    ) {
        let mut w = MsgWriter::new();
        w.put_u32(x);
        w.put_i32_slice(&a);
        w.put_u64(y);
        w.put_f64_slice(&b);
        w.put_bytes(&c);
        let mut r = MsgReader::new(w.freeze());
        prop_assert_eq!(r.get_u32().unwrap(), x);
        prop_assert_eq!(r.get_i32_slice().unwrap(), a);
        prop_assert_eq!(r.get_u64().unwrap(), y);
        prop_assert_eq!(r.get_f64_slice().unwrap(), b);
        prop_assert_eq!(&r.get_bytes().unwrap()[..], &c[..]);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Block partitions cover 0..n exactly, without gaps or overlap.
    #[test]
    fn block_ranges_partition(n in 0usize..10_000, p in 1usize..16) {
        let mut next = 0;
        for r in 0..p {
            let range = block_range(n, p, r);
            prop_assert_eq!(range.start, next);
            next = range.end;
        }
        prop_assert_eq!(next, n);
    }

    /// FFT followed by inverse FFT recovers the input (scaled by n).
    #[test]
    fn fft_inverse_recovers_input(
        raw in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..5)
    ) {
        // Pad to a power of two length >= 2.
        let n = raw.len().next_power_of_two().max(2);
        let mut data: Vec<Complex> = raw.clone();
        data.resize(n, (0.0, 0.0));
        let original = data.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (o, d) in original.iter().zip(&data) {
            prop_assert!((o.0 - d.0 / n as f64).abs() < 1e-6);
            prop_assert!((o.1 - d.1 / n as f64).abs() < 1e-6);
        }
    }

    /// JPEG codec: decompressing a compressed strip preserves shape and
    /// keeps per-pixel error within JPEG-like bounds for smooth content.
    #[test]
    fn jpeg_codec_bounded_error(seed in any::<u64>()) {
        let w = pdc_tool_eval::apps::jpeg::JpegCompression { width: 16, height: 16, seed };
        let img = w.generate_image();
        let enc = compress_strip(&img, 16, 16);
        let dec = decompress_strip(&enc, 16, 16);
        prop_assert_eq!(dec.len(), img.len());
        let mse: f64 = img.iter().zip(&dec)
            .map(|(&a, &b)| { let d = a as f64 - b as f64; d * d })
            .sum::<f64>() / img.len() as f64;
        prop_assert!(mse < 200.0, "mse {}", mse);
    }

    /// Relative scores are in [0, 1] and the fastest tool always gets 1.
    #[test]
    fn measurement_scores_are_normalized(
        t1 in 0.001f64..1000.0,
        t2 in 0.001f64..1000.0,
        t3 in 0.001f64..1000.0,
    ) {
        let m = Measurement::new("m", vec![
            (ToolKind::EXPRESS, Some(t1)),
            (ToolKind::P4, Some(t2)),
            (ToolKind::PVM, Some(t3)),
        ]);
        let scores: Vec<f64> = ToolKind::all().iter().map(|&t| m.relative_score(t)).collect();
        for s in &scores {
            prop_assert!((0.0..=1.0).contains(s));
        }
        prop_assert!(scores.iter().any(|&s| (s - 1.0).abs() < 1e-12));
    }

    /// Simulated time arithmetic is consistent: chained holds sum exactly.
    #[test]
    fn sim_durations_sum(us in proptest::collection::vec(1u64..10_000, 1..20)) {
        let total: u64 = us.iter().sum();
        let summed: SimDuration = us.iter().map(|&u| SimDuration::from_micros(u)).sum();
        prop_assert_eq!(summed, SimDuration::from_micros(total));
    }
}

proptest! {
    // Simulation-backed properties are more expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PSRS produces the sorted permutation of its input for arbitrary
    /// seeds and any tool/processor combination.
    #[test]
    fn psrs_sorts_arbitrary_inputs(
        seed in any::<u64>(),
        procs in 1usize..5,
        tool_idx in 0usize..3,
    ) {
        let w = PsrsSort { keys: 600, seed };
        let expect = w.sequential();
        let tool = ToolKind::all()[tool_idx];
        let out = run_workload(&w, &SpmdConfig::new(Platform::SUN_ATM_LAN, tool, procs)).unwrap();
        prop_assert_eq!(out.results[0], expect);
    }

    /// Arbitrary payload bytes survive a round trip through any tool.
    #[test]
    fn payloads_survive_transit(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        tool_idx in 0usize..3,
    ) {
        let tool = ToolKind::all()[tool_idx];
        let sent = Bytes::from(payload.clone());
        let expect = payload;
        let out = run_spmd(&SpmdConfig::new(Platform::SUN_ETHERNET, tool, 2), move |node| {
            if node.rank() == 0 {
                node.send(1, 5, sent.clone()).unwrap();
                Vec::new()
            } else {
                node.recv(Some(0), Some(5)).unwrap().data.to_vec()
            }
        }).unwrap();
        prop_assert_eq!(&out.results[1], &expect);
    }
}

// ---------------------------------------------------------------------------
// Topology spec round-trips
// ---------------------------------------------------------------------------

mod topology_specs {
    use pdc_tool_eval::simnet::host::HostSpec;
    use pdc_tool_eval::simnet::net::LinkParams;
    use pdc_tool_eval::simnet::platform::PlatformSpec;
    use pdc_tool_eval::simnet::time::SimDuration;
    use pdc_tool_eval::simnet::topology::{HostGroup, Topology};
    use proptest::TestRng;

    fn rng_host(rng: &mut TestRng, i: usize) -> HostSpec {
        HostSpec {
            name: format!("Host model {i}"),
            mflops: (rng.below(100_000) + 1) as f64 / 10.0,
            mips: (rng.below(1_000_000) + 1) as f64,
            mem_bw_mbs: (rng.below(50_000) + 1) as f64,
            sw_scale: (rng.below(5_000) + 1) as f64 / 1000.0,
        }
    }

    fn rng_link(rng: &mut TestRng, name: String) -> LinkParams {
        LinkParams {
            name,
            bandwidth_mbps: (rng.below(1_000_000) + 1) as f64 / 10.0,
            latency: SimDuration::from_micros(rng.below(100_000) + 1),
            mtu: (rng.below(64_000) + 64) as usize,
            per_packet: SimDuration::from_micros(rng.below(1_000)),
            shared_medium: rng.below(2) == 0,
        }
    }

    /// A pseudo-random multi-group topology platform (1..=4 groups).
    pub fn rng_platform(seed: u64) -> PlatformSpec {
        let mut rng = TestRng::deterministic(&format!("topology-{seed}"));
        let ngroups = (rng.below(4) + 1) as usize;
        let groups: Vec<HostGroup> = (0..ngroups)
            .map(|i| HostGroup {
                name: format!("g{i}"),
                host: rng_host(&mut rng, i),
                count: (rng.below(64) + 1) as usize,
                link: rng_link(&mut rng, format!("Link {i}")),
            })
            .collect();
        let inter = (ngroups > 1).then(|| rng_link(&mut rng, "Inter link".to_string()));
        let topology = Topology { groups, inter };
        let max_nodes = topology.total_hosts();
        PlatformSpec {
            name: format!("Prop Topology {seed}"),
            slug: "prop-topo".to_string(),
            topology,
            max_nodes,
            wan: rng.below(2) == 0,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Topology stanzas round-trip exactly: parse ∘ render is the
    /// identity on arbitrary valid (possibly heterogeneous) platforms.
    #[test]
    fn topology_stanzas_round_trip(seed in any::<u64>()) {
        use pdc_tool_eval::mpt::spec::{parse_spec, render_spec, SpecFile};
        let spec = topology_specs::rng_platform(seed);
        prop_assert!(spec.validate().is_ok());
        let file = SpecFile {
            tools: vec![],
            platforms: vec![spec],
            campaigns: vec![],
            perturbs: vec![],
        };
        let rendered = render_spec(&file);
        let reparsed =
            parse_spec(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
        prop_assert_eq!(&reparsed, &file);
        // Render is deterministic, so a second round trip is a fixpoint.
        prop_assert_eq!(render_spec(&reparsed), rendered);
    }
}

// ---------------------------------------------------------------------------
// Campaign-stanza round-trips
// ---------------------------------------------------------------------------

mod campaign_specs {
    use pdc_tool_eval::mpt::spec::CampaignSpec;
    use proptest::TestRng;

    const KERNELS: [&str; 10] = [
        "sendrecv",
        "sendrecv-i2",
        "broadcast",
        "ring",
        "ring-x3",
        "globalsum",
        "fft",
        "jpeg",
        "montecarlo",
        "sorting",
    ];
    const TOOLS: [&str; 4] = ["express", "p4", "pvm", "mpl"];
    const PLATFORMS: [&str; 3] = ["sun-eth", "alpha-fddi", "modern100"];
    const PERTURBS: [&str; 3] = ["none", "chaos-a", "lossy-b"];

    /// A random strictly-increasing number list (duplicate axis entries
    /// are rejected by validation).
    fn rng_numbers(rng: &mut TestRng, max_items: u64, max_step: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut v = 0;
        for _ in 0..(rng.below(max_items) + 1) {
            v += rng.below(max_step) + 1;
            out.push(v);
        }
        out
    }

    fn rng_subset(rng: &mut TestRng, pool: &[&str]) -> Vec<String> {
        pool.iter()
            .filter(|_| rng.below(2) == 0)
            .map(|s| s.to_string())
            .collect()
    }

    /// A pseudo-random (always valid) campaign stanza.
    pub fn rng_campaign(seed: u64) -> CampaignSpec {
        let mut rng = TestRng::deterministic(&format!("campaign-{seed}"));
        let mut kernels = rng_subset(&mut rng, &KERNELS);
        if kernels.is_empty() {
            kernels.push("broadcast".to_string());
        }
        let perturbs = rng_subset(&mut rng, &PERTURBS);
        // A seed axis needs at least one non-clean perturbation.
        let seeds = if perturbs.iter().any(|p| p != "none") {
            (rng.below(4) + 1) as u32
        } else {
            1
        };
        CampaignSpec {
            slug: format!("prop-sweep-{}", rng.below(4)),
            title: (rng.below(2) == 0).then(|| format!("Prop sweep (seed variant {seed})")),
            kernels,
            nprocs: rng_numbers(&mut rng, 4, 8)
                .into_iter()
                .map(|n| n as usize)
                .collect(),
            sizes: rng_numbers(&mut rng, 4, 100_000),
            reps: (rng.below(5) + 1) as u32,
            tools: rng_subset(&mut rng, &TOOLS),
            platforms: rng_subset(&mut rng, &PLATFORMS),
            perturbs,
            seeds,
        }
    }
}

// ---------------------------------------------------------------------------
// Perturbation-stanza round-trips
// ---------------------------------------------------------------------------

mod perturb_specs {
    use pdc_tool_eval::simnet::perturb::PerturbSpec;
    use proptest::TestRng;

    /// A pseudo-random (always valid) perturbation stanza: each knob is
    /// independently present or left at its quiet default.
    pub fn rng_perturb(seed: u64) -> PerturbSpec {
        let mut rng = TestRng::deterministic(&format!("perturb-{seed}"));
        let mut spec = PerturbSpec::quiet(format!("prop-perturb-{}", rng.below(4)));
        if rng.below(2) == 0 {
            spec.title = Some(format!("Prop perturbation (seed variant {seed})"));
        }
        if rng.below(2) == 0 {
            spec.jitter = (rng.below(1000) + 1) as f64 / 1000.0;
        }
        if rng.below(2) == 0 {
            spec.congestion = (rng.below(1000) + 1) as f64 / 1000.0;
        }
        for i in 0..rng.below(3) {
            // Factors >= 1, distinct group names.
            spec.stragglers
                .push((format!("g{i}"), (rng.below(4000) + 1000) as f64 / 1000.0));
        }
        if rng.below(2) == 0 {
            spec.loss = (rng.below(999) + 1) as f64 / 1000.0;
            spec.loss_timeout_us = (rng.below(100_000) + 1) as f64;
        }
        if rng.below(2) == 0 {
            spec.crash_rank = Some(rng.below(16) as usize);
            spec.crash_at_us = Some((rng.below(1_000_000) + 1) as f64);
        }
        spec
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Perturbation stanzas round-trip exactly: parse ∘ render is the
    /// identity on arbitrary valid declarations, and render is a
    /// fixpoint (matching the topology/campaign stanza properties).
    #[test]
    fn perturb_stanzas_round_trip(seed in any::<u64>()) {
        use pdc_tool_eval::mpt::spec::{parse_spec, render_spec, SpecFile};
        let spec = perturb_specs::rng_perturb(seed);
        prop_assert!(spec.validate().is_ok(), "{:?}", spec);
        let file = SpecFile {
            tools: vec![],
            platforms: vec![],
            campaigns: vec![],
            perturbs: vec![spec],
        };
        let rendered = render_spec(&file);
        let reparsed =
            parse_spec(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
        prop_assert_eq!(&reparsed, &file);
        prop_assert_eq!(render_spec(&reparsed), rendered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Campaign stanzas round-trip exactly: parse ∘ render is the
    /// identity on arbitrary valid declarations, and render is a
    /// fixpoint.
    #[test]
    fn campaign_stanzas_round_trip(seed in any::<u64>()) {
        use pdc_tool_eval::mpt::spec::{parse_spec, render_spec, SpecFile};
        let spec = campaign_specs::rng_campaign(seed);
        prop_assert!(spec.validate().is_ok(), "{spec:?}");
        let file = SpecFile {
            tools: vec![],
            platforms: vec![],
            campaigns: vec![spec],
            perturbs: vec![],
        };
        let rendered = render_spec(&file);
        let reparsed =
            parse_spec(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
        prop_assert_eq!(&reparsed, &file);
        prop_assert_eq!(render_spec(&reparsed), rendered);
    }

    /// JSON string escaping round-trips arbitrary unicode, including
    /// astral-plane characters, through the store's parser.
    #[test]
    fn json_strings_round_trip_arbitrary_unicode(seed in any::<u64>()) {
        use pdc_tool_eval::campaign::json::{escape, parse_object};
        let mut rng = TestRng::deterministic(&format!("json-{seed}"));
        let len = rng.below(40);
        let s: String = (0..len)
            .map(|_| loop {
                // Any scalar value, astral planes included (surrogate
                // code points are not chars and cannot be generated).
                if let Some(c) = char::from_u32(rng.below(0x110000) as u32) {
                    break c;
                }
            })
            .collect();
        let line = format!("{{\"k\": \"{}\"}}", escape(&s));
        let pairs = parse_object(&line)
            .unwrap_or_else(|e| panic!("{e}\n---\n{line}"));
        prop_assert_eq!(pairs[0].1.as_str(), Some(s.as_str()));
    }

    /// The escaped-surrogate-pair form other JSON writers emit for
    /// astral chars parses back to the same string.
    #[test]
    fn escaped_utf16_form_parses_back(seed in any::<u64>()) {
        use pdc_tool_eval::campaign::json::parse_object;
        let mut rng = TestRng::deterministic(&format!("utf16-{seed}"));
        let len = rng.below(20) + 1;
        let s: String = (0..len)
            .map(|_| loop {
                if let Some(c) = char::from_u32(rng.below(0x110000) as u32) {
                    break c;
                }
            })
            .collect();
        // Encode every char as \uXXXX UTF-16 escapes (pairs for astral
        // chars) — the maximally-escaped form.
        let mut esc = String::new();
        for u in s.encode_utf16() {
            esc.push_str(&format!("\\u{u:04x}"));
        }
        let line = format!("{{\"k\": \"{esc}\"}}");
        let pairs = parse_object(&line)
            .unwrap_or_else(|e| panic!("{e}\n---\n{line}"));
        prop_assert_eq!(pairs[0].1.as_str(), Some(s.as_str()));
    }

    /// Stores render parseable JSONL for any stats values, finite or
    /// not: non-finite statistics read back as null, finite ones
    /// round-trip exactly.
    #[test]
    fn stores_round_trip_non_finite_stats(
        mean in any::<f64>(),
        min in any::<f64>(),
        max in any::<f64>(),
        cv in any::<f64>(),
    ) {
        use pdc_tool_eval::campaign::runner::{RecordStatus, RepStats, ScenarioRecord};
        use pdc_tool_eval::campaign::store::{parse_jsonl, render_jsonl, StoreMeta};
        use pdc_tool_eval::campaign::{Kernel, Scenario};
        let r = ScenarioRecord {
            scenario: Scenario {
                kernel: Kernel::Broadcast,
                tool: ToolKind::P4,
                platform: Platform::SUN_ETHERNET,
                nprocs: 4,
                size: 1024,
                reps: 2,
                perturb: None,
            },
            status: RecordStatus::Ok,
            stats: Some(RepStats { mean, min, max, cv }),
            detail: None,
            counters: None,
            provenance: None,
        };
        let text = render_jsonl(&[r], &StoreMeta::none());
        let parsed = parse_jsonl(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        let expect = |v: f64| v.is_finite().then_some(v);
        prop_assert_eq!(parsed[0].mean, expect(mean));
        prop_assert_eq!(parsed[0].min, expect(min));
        prop_assert_eq!(parsed[0].max, expect(max));
        prop_assert_eq!(parsed[0].cv, expect(cv));
    }
}

// ---------------------------------------------------------------------------
// Scheduler-equivalence properties (pooled direct-handoff engine)
// ---------------------------------------------------------------------------

/// A randomly generated deadlock-free program for one simulated process:
/// interleaved holds and ring sends/receives. Every receive is satisfiable
/// because every proc sends exactly `rounds` tagged messages to its
/// successor and receives the same from its predecessor.
mod sched_equivalence {
    use super::*;
    use pdc_tool_eval::simnet::engine::{SimOutcome, Simulation};
    use pdc_tool_eval::simnet::envelope::{Envelope, Matcher};
    use pdc_tool_eval::simnet::flight::{Stage, TransmitPlan};
    use pdc_tool_eval::simnet::host::HostSpec;
    use pdc_tool_eval::simnet::ids::ProcId;
    use pdc_tool_eval::simnet::time::SimTime;

    /// One proc's schedule: per-round (pre-send hold µs, payload bytes,
    /// post-send hold µs, latency µs).
    pub type Program = Vec<(u64, usize, u64, u64)>;

    pub fn run_ring(programs: &[Program]) -> SimOutcome {
        let nprocs = programs.len();
        let mut sim = Simulation::new();
        for (r, prog) in programs.iter().enumerate() {
            let prog = prog.clone();
            let next = ProcId(((r + 1) % nprocs) as u32);
            sim.spawn_indexed("eq", r, HostSpec::sun_ipx(), move |ctx| {
                for (round, &(pre_us, bytes, post_us, lat_us)) in prog.iter().enumerate() {
                    if pre_us > 0 {
                        ctx.hold(SimDuration::from_micros(pre_us));
                    }
                    let env = Envelope::new(
                        ctx.pid(),
                        next,
                        round as u32,
                        Bytes::from(vec![round as u8; bytes]),
                    );
                    ctx.transmit(
                        env,
                        TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(
                            lat_us,
                        ))]),
                    );
                    if post_us > 0 {
                        ctx.hold(SimDuration::from_micros(post_us));
                    }
                    let got = ctx.recv(Matcher::tagged(round as u32));
                    assert!(got.payload.len() < 2048);
                }
            });
        }
        sim.run().expect("equivalence program deadlocked")
    }

    /// Byte-comparable digest of everything an outcome reports.
    pub fn digest(out: &SimOutcome) -> (u64, Vec<(String, u64)>, u64, u64) {
        (
            (out.end_time - SimTime::ZERO).as_nanos(),
            out.proc_finish
                .iter()
                .map(|(n, t)| (n.clone(), (*t - SimTime::ZERO).as_nanos()))
                .collect(),
            out.messages_delivered,
            out.wire_bytes_delivered,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random hold/send/recv ring programs produce byte-identical
    /// `SimOutcome`s across repeated runs of the pooled scheduler.
    #[test]
    fn pooled_scheduler_is_deterministic(
        nprocs in 2usize..9,
        rounds in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = TestRng::deterministic(&format!("programs-{seed}"));
        let programs: Vec<sched_equivalence::Program> = (0..nprocs)
            .map(|_| {
                (0..rounds)
                    .map(|_| {
                        (
                            rng.below(500),
                            rng.below(2048) as usize,
                            rng.below(500),
                            rng.below(300),
                        )
                    })
                    .collect()
            })
            .collect();
        let reference = sched_equivalence::digest(&sched_equivalence::run_ring(&programs));
        for _ in 0..2 {
            let again = sched_equivalence::digest(&sched_equivalence::run_ring(&programs));
            prop_assert_eq!(&again, &reference);
        }
    }

    /// Hold-only programs end exactly at the analytically computed time:
    /// the slowest process's hold sum (an independent reference for the
    /// scheduler's clock arithmetic).
    #[test]
    fn pooled_scheduler_matches_analytic_reference(
        holds in collection::vec(collection::vec(1u64..10_000, 1..8), 1..8),
    ) {
        use pdc_tool_eval::simnet::engine::Simulation;
        use pdc_tool_eval::simnet::host::HostSpec;
        let mut sim = Simulation::new();
        for (i, hs) in holds.iter().enumerate() {
            let hs = hs.clone();
            sim.spawn_indexed("h", i, HostSpec::sun_ipx(), move |ctx| {
                for &us in &hs {
                    ctx.hold(SimDuration::from_micros(us));
                }
            });
        }
        let out = sim.run().unwrap();
        let expect: u64 = holds.iter().map(|hs| hs.iter().sum()).max().unwrap();
        prop_assert_eq!(
            out.end_time.as_micros_f64(),
            expect as f64
        );
    }
}

// ---------------------------------------------------------------------------
// Perturbed-run replay determinism
// ---------------------------------------------------------------------------

mod perturb_replay {
    use pdc_tool_eval::simnet::perturb::{register_perturb, PerturbId, PerturbSpec};
    use std::sync::OnceLock;

    /// One shared chaos model for the replay property (registered once;
    /// the registry is process-global).
    pub fn chaos_id() -> PerturbId {
        static ID: OnceLock<PerturbId> = OnceLock::new();
        *ID.get_or_init(|| {
            let mut spec = PerturbSpec::quiet("proptest-replay-chaos");
            spec.jitter = 0.4;
            spec.congestion = 0.3;
            spec.loss = 0.05;
            spec.loss_timeout_us = 2000.0;
            register_perturb(spec).expect("chaos model registers once")
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The robustness guarantee itself: a perturbed campaign run with a
    /// given seed renders a byte-identical store on every replay, on the
    /// serial and the parallel runner alike.
    #[test]
    fn perturbed_runs_replay_bit_identical(seed in 1u32..10_000) {
        use pdc_tool_eval::campaign::run_campaign;
        use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
        use pdc_tool_eval::campaign::{Kernel, PerturbRun, Scenario};
        let perturb = Some(PerturbRun { id: perturb_replay::chaos_id(), seed });
        let scenarios: Vec<Scenario> = [ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS]
            .into_iter()
            .map(|tool| Scenario {
                kernel: Kernel::Ring { shifts: 1 },
                tool,
                platform: Platform::SUN_ETHERNET,
                nprocs: 4,
                size: 4096,
                reps: 2,
                perturb,
            })
            .collect();
        let serial = render_jsonl(&run_campaign(&scenarios, 1), &StoreMeta::none());
        let replay = render_jsonl(&run_campaign(&scenarios, 1), &StoreMeta::none());
        let parallel = render_jsonl(&run_campaign(&scenarios, 3), &StoreMeta::none());
        prop_assert_eq!(&serial, &replay);
        prop_assert_eq!(&serial, &parallel);
    }

    /// Tracing is purely observational: a traced campaign (clean and
    /// perturbed points alike) renders a byte-identical store to an
    /// untraced one, on the serial and the parallel runner.
    #[test]
    fn traced_stores_are_byte_identical_to_untraced(seed in 1u32..10_000) {
        use pdc_tool_eval::campaign::{run_campaign, run_campaign_with, CampaignOptions};
        use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
        use pdc_tool_eval::campaign::{Kernel, PerturbRun, Scenario};
        let clean = Scenario {
            kernel: Kernel::Ring { shifts: 1 },
            tool: ToolKind::P4,
            platform: Platform::SUN_ETHERNET,
            nprocs: 4,
            size: 4096,
            reps: 2,
            perturb: None,
        };
        let mut chaotic = clean;
        chaotic.perturb = Some(PerturbRun { id: perturb_replay::chaos_id(), seed });
        let mut sendrecv = clean;
        sendrecv.kernel = Kernel::SendRecv { iters: 2 };
        let scenarios = vec![clean, chaotic, sendrecv];
        let untraced = render_jsonl(&run_campaign(&scenarios, 1), &StoreMeta::none());
        let trace_dir = std::env::temp_dir().join(format!(
            "pdceval-trace-prop-{}-{seed}",
            std::process::id()
        ));
        let opts = CampaignOptions {
            trace_dir: Some(trace_dir.as_path()),
            on_scenario_done: None,
        };
        let traced_serial =
            render_jsonl(&run_campaign_with(&scenarios, 1, &opts), &StoreMeta::none());
        let traced_parallel =
            render_jsonl(&run_campaign_with(&scenarios, 3, &opts), &StoreMeta::none());
        let _ = std::fs::remove_dir_all(&trace_dir);
        prop_assert_eq!(&untraced, &traced_serial);
        prop_assert_eq!(&untraced, &traced_parallel);
    }
}

// ---------------------------------------------------------------------------
// Calendar-queue equivalence (the engine's event scheduler)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The calendar queue is observationally identical to a sorted
    /// binary-heap oracle over arbitrary push/pop interleavings: strict
    /// `(time, seq)` order, FIFO among same-timestamp entries, and
    /// far-future pushes (which force bucket regrows and full calendar
    /// laps) included.
    #[test]
    fn calendar_queue_matches_binary_heap_oracle(
        ops in proptest::collection::vec((0u8..6, any::<u64>()), 1..400),
    ) {
        use pdc_tool_eval::simnet::calq::CalendarQueue;
        use pdc_tool_eval::simnet::time::{SimDuration, SimTime};
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut oracle: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut clock = SimTime::ZERO;
        for &(op, raw) in &ops {
            if op == 5 {
                // Pop: both sides must agree on the head (or emptiness),
                // and the clock only moves forward.
                let got = q.pop();
                let expect = oracle.pop().map(|Reverse(e)| e);
                prop_assert_eq!(got, expect);
                if let Some((t, _, _)) = got {
                    prop_assert!(t >= clock);
                    clock = t;
                }
            } else {
                // Push: the engine never schedules before its clock. The
                // offset mix covers exact ties (FIFO by seq), same-bucket
                // bursts, day-crossing spreads, and far-future horizons
                // that force the calendar to resize or lap.
                let offset = match op {
                    0 => 0,
                    1 => raw % 1_000,
                    2 => raw % 1_000_000,
                    3 => raw % 4_000_000_000,
                    _ => 3_600_000_000_000 + raw % 1_000_000_000,
                };
                let at = clock + SimDuration::from_nanos(offset);
                q.push(at, seq, seq);
                oracle.push(Reverse((at, seq, seq)));
                seq += 1;
            }
            prop_assert_eq!(q.len(), oracle.len());
        }
        // Drain: the tails stay in lock-step to emptiness.
        while let Some(Reverse((t, s, v))) = oracle.pop() {
            prop_assert_eq!(q.pop(), Some((t, s, v)));
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.pop(), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The results cache is transparent: for any pre-populated subset of
    /// a campaign and any serial/parallel worker mix, cold, warm, and
    /// mixed (hits spliced among misses) runs all render byte-identical
    /// JSONL stores.
    #[test]
    fn cached_runs_are_byte_identical_cold_warm_and_mixed(seed in any::<u64>()) {
        use pdc_tool_eval::campaign::cache::{run_campaign_cached, CampaignCache};
        use pdc_tool_eval::campaign::runner::{run_campaign_with, CampaignOptions};
        use pdc_tool_eval::campaign::scenario::Kernel;
        use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
        use pdc_tool_eval::campaign::ScenarioGrid;
        use proptest::TestRng;

        let mut rng = TestRng::deterministic(&format!("cache-{seed}"));
        let scenarios = ScenarioGrid::new()
            .kernels([Kernel::Ring { shifts: 1 }, Kernel::Broadcast])
            .tools([ToolKind::P4, ToolKind::PVM])
            .platforms([Platform::SUN_ETHERNET])
            .nprocs([4])
            .sizes([0, 4096])
            .reps(1 + rng.below(2) as u32)
            .scenarios();
        let warm = rng.below(3) as usize + 1;
        let cold = rng.below(3) as usize + 1;
        let meta = StoreMeta::none();
        let opts = CampaignOptions::default();
        let reference = render_jsonl(&run_campaign_with(&scenarios, cold, &opts), &meta);

        let dir = std::env::temp_dir().join(format!(
            "pdceval-proptest-cache-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold: every point misses and executes.
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (records, report) = run_campaign_cached(&scenarios, cold, &opts, &mut cache, &meta);
        prop_assert_eq!(report.misses, scenarios.len());
        prop_assert_eq!(render_jsonl(&records, &meta), reference.clone());
        drop(cache);

        // Warm: every point hits, possibly under a different worker count.
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (records, report) = run_campaign_cached(&scenarios, warm, &opts, &mut cache, &meta);
        prop_assert_eq!(report.hits, scenarios.len());
        prop_assert_eq!(render_jsonl(&records, &meta), reference.clone());
        drop(cache);

        // Mixed: evict a random subset by rebuilding the cache from a
        // partial campaign, then sweep the full grid — hits splice back
        // among fresh executions in grid order.
        let keep: Vec<_> = scenarios
            .iter()
            .filter(|_| rng.below(2) == 0)
            .cloned()
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (_, report) = run_campaign_cached(&keep, cold, &opts, &mut cache, &meta);
        prop_assert_eq!(report.misses, keep.len());
        drop(cache);
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (records, report) = run_campaign_cached(&scenarios, warm, &opts, &mut cache, &meta);
        prop_assert_eq!(report.hits, keep.len());
        prop_assert_eq!(report.misses, scenarios.len() - keep.len());
        prop_assert_eq!(render_jsonl(&records, &meta), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seeded random-schedule fuzzing of the scheduler models: across
    /// the proptest cases this drives thousands of randomly interleaved
    /// schedules per run, and every one of them must finish clean on
    /// every correct small model. A failure here reproduces from the
    /// proptest seed alone — `fuzz` derives each schedule
    /// deterministically from `seed` and the round index.
    #[test]
    fn random_schedules_are_clean_on_correct_models(seed in any::<u64>()) {
        use pdceval_check::explore::{fuzz, Config};
        use pdceval_check::model::small_models;

        for spec in small_models() {
            let report = fuzz(&spec, seed, 64, &Config::default());
            prop_assert!(
                report.violation.is_none(),
                "model '{}' under seed {seed}: {:?}",
                report.model,
                report.violation
            );
        }
    }
}

/// Regression corpus for the model checker: the two mutants the issue
/// names (lost wakeup, dormant-count off-by-one) stay caught, each
/// pinned to the model and — for the fuzz path — the seed that first
/// exposed it. If a refactor of the sync shims ever makes one of these
/// undetectable, this fails before the mutation sweep in
/// `pdceval-check`'s own tests does.
#[test]
fn regression_corpus_pins_the_seeded_mutants() {
    use pdceval_check::explore::{explore, fuzz, Config};
    use pdceval_check::model::{lazy_relay, pingpong, Mutation, Violation};

    let cfg = Config::default();

    // Lost wakeup: exhaustive search proves it, and the pinned fuzz
    // seed reproduces it in a bounded number of random schedules.
    let lost = pingpong().with_mutation(Mutation::LostWakeup);
    let found = explore(&lost, &cfg)
        .violation
        .expect("explorer catches the lost wakeup");
    assert!(
        matches!(found.violation, Violation::Deadlock { .. }),
        "unexpected violation: {:?}",
        found.violation
    );
    let fuzzed = fuzz(&lost, 0xB10C_5EED, 2_000, &cfg)
        .violation
        .expect("pinned fuzz seed catches the lost wakeup");
    assert!(matches!(fuzzed.violation, Violation::Deadlock { .. }));

    // Dormant-count off-by-one: the undercounted send underflows the
    // completion counter (or closes the run early, depending on which
    // side of the race the schedule lands on).
    let off_by_one = lazy_relay().with_mutation(Mutation::DormantUndercount);
    let found = explore(&off_by_one, &cfg)
        .violation
        .expect("explorer catches the dormant undercount");
    assert!(
        matches!(
            found.violation,
            Violation::CounterUnderflow | Violation::PrematureCompletion { .. }
        ),
        "unexpected violation: {:?}",
        found.violation
    );
}
