//! Integration tests for the data-driven model registry and the `.spec`
//! file pipeline: built-in specs round-trip through the format, bad
//! files are rejected with usable diagnostics, and the bundled
//! demonstration spec (`examples/modern.spec`) runs end-to-end — a
//! fourth tool and a seventh platform with zero Rust changes.

use pdc_tool_eval::campaign::campaigns::spec_smoke;
use pdc_tool_eval::campaign::runner::{run_campaign, RecordStatus};
use pdc_tool_eval::campaign::store::{parse_jsonl, render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::Scale;
use pdc_tool_eval::core::adl::{assessment, Criterion, Support};
use pdc_tool_eval::mpt::spec::{parse_spec, render_spec, SpecFile};
use pdc_tool_eval::mpt::{ModelRegistry, Primitive, ToolKind};
use pdc_tool_eval::simnet::platform::Platform;
use std::path::Path;
use std::sync::OnceLock;

fn demo_spec_text() -> String {
    std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/modern.spec"))
        .expect("examples/modern.spec readable")
}

/// Loads the demo spec exactly once per test process (the registry is
/// process-global and loading is idempotent anyway).
fn demo_ids() -> &'static (Vec<ToolKind>, Vec<Platform>) {
    static LOADED: OnceLock<(Vec<ToolKind>, Vec<Platform>)> = OnceLock::new();
    LOADED.get_or_init(|| {
        let loaded = ModelRegistry::global()
            .load_spec_text(&demo_spec_text())
            .expect("demo spec loads");
        (loaded.tools, loaded.platforms)
    })
}

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

#[test]
fn builtin_specs_round_trip_through_the_spec_format() {
    let registry = ModelRegistry::global();
    let file = SpecFile {
        tools: ToolKind::builtin()
            .into_iter()
            .map(|t| (*t.spec()).clone())
            .collect(),
        platforms: Platform::builtin()
            .into_iter()
            .map(|p| (*p.spec()).clone())
            .collect(),
        campaigns: vec![],
        perturbs: vec![],
    };
    let rendered = render_spec(&file);
    let reparsed = parse_spec(&rendered).expect("rendered builtins re-parse");
    assert_eq!(file, reparsed);

    // Re-registering the parsed built-ins is idempotent: the registry
    // hands back the original built-in ids, not duplicates.
    let loaded = registry
        .load_spec_text(&rendered)
        .expect("rendered builtins re-register");
    assert_eq!(loaded.tools, ToolKind::builtin().to_vec());
    assert_eq!(loaded.platforms, Platform::builtin().to_vec());
}

#[test]
fn demo_spec_round_trips_and_is_idempotent() {
    let file = parse_spec(&demo_spec_text()).expect("demo spec parses");
    assert_eq!(file.tools.len(), 1);
    assert_eq!(file.platforms.len(), 1);
    let reparsed = parse_spec(&render_spec(&file)).expect("re-parse");
    assert_eq!(file, reparsed);

    let (tools_a, platforms_a) = demo_ids().clone();
    let loaded_again = ModelRegistry::global()
        .load_spec_text(&demo_spec_text())
        .expect("second load");
    assert_eq!(loaded_again.tools, tools_a);
    assert_eq!(loaded_again.platforms, platforms_a);
}

// ---------------------------------------------------------------------------
// Rejection diagnostics
// ---------------------------------------------------------------------------

#[test]
fn malformed_specs_fail_with_line_diagnostics() {
    let registry = ModelRegistry::global();
    // Garbage line.
    let err = registry
        .load_spec_text("[tool bad]\nname Toy\n")
        .unwrap_err();
    assert!(err.contains("line 2"), "{err}");
    // Incomplete tool.
    let err = registry
        .load_spec_text("[tool bad]\nname = Toy\n")
        .unwrap_err();
    assert!(err.contains("missing required key"), "{err}");
    // Conflicting re-registration of a built-in slug.
    let mut hijack = render_spec(&SpecFile {
        tools: vec![(*ToolKind::P4.spec()).clone()],
        platforms: vec![],
        campaigns: vec![],
        perturbs: vec![],
    });
    hijack = hijack.replace("profile.send_alpha_us = 1000", "profile.send_alpha_us = 1");
    let err = registry.load_spec_text(&hijack).unwrap_err();
    assert!(err.contains("already registered"), "{err}");
}

// ---------------------------------------------------------------------------
// End-to-end: the demo spec's tool and platform actually run.
// ---------------------------------------------------------------------------

#[test]
fn demo_spec_models_run_end_to_end() {
    let (tools, platforms) = demo_ids();
    let mpl = tools[0];
    let modern = platforms[0];
    assert_eq!(mpl.slug(), "mpl");
    assert_eq!(modern.slug(), "modern100");
    assert_eq!(modern.max_nodes(), 100);
    assert!(mpl.supports_global_ops());
    assert_eq!(
        mpl.primitive_name(Primitive::GlobalSum).as_deref(),
        Some("mpl_combine")
    );

    // The same campaign `pdceval run --spec examples/modern.spec` runs.
    let campaign = spec_smoke(tools, platforms, Scale::Quick);
    assert!(
        campaign.scenarios.iter().any(|s| s.tool == mpl),
        "spec tool missing from the smoke grid"
    );
    assert!(
        campaign.scenarios.iter().all(|s| s.platform == modern),
        "smoke grid must sweep the spec platform"
    );
    let records = run_campaign(&campaign.scenarios, 4);
    assert_eq!(records.len(), campaign.scenarios.len());
    for r in &records {
        assert_eq!(
            r.status,
            RecordStatus::Ok,
            "{}: {:?}",
            r.scenario.key(),
            r.detail
        );
    }

    // Store keys carry the spec slugs and the store round-trips.
    let text = render_jsonl(&records, &StoreMeta::none());
    assert!(text.contains("/mpl/modern100/"));
    let parsed = parse_jsonl(&text).expect("store parses");
    assert_eq!(parsed.len(), records.len());

    // Determinism holds for spec models exactly as for built-ins.
    let again = run_campaign(&campaign.scenarios, 1);
    assert_eq!(render_jsonl(&again, &StoreMeta::none()), text);
}

#[test]
fn spec_tools_participate_in_the_adl_assessment() {
    let (tools, _) = demo_ids();
    let a = assessment(tools[0]);
    assert_eq!(a.len(), Criterion::all().len());
    // From examples/modern.spec: debugging is WS, portability is PS.
    assert_eq!(a[3], (Criterion::DebuggingSupport, Support::Well));
    assert_eq!(a[8], (Criterion::Portability, Support::Partial));
}

#[test]
fn spec_tool_is_rankable_against_builtins() {
    use pdc_tool_eval::campaign::exec::Executor;
    use pdc_tool_eval::campaign::{Kernel, Scenario};

    let (tools, platforms) = demo_ids();
    let mut exec = Executor::new();
    let mut time = |tool| {
        exec.run(&Scenario {
            kernel: Kernel::SendRecv { iters: 1 },
            tool,
            platform: platforms[0],
            nprocs: 2,
            size: 16 * 1024,
            reps: 1,
            perturb: None,
        })
        .expect("run")
        .value()
        .expect("timed")
    };
    // MPL's profile is thinner than PVM's daemon route everywhere, so on
    // its own platform it must beat PVM at 16 KB.
    assert!(time(tools[0]) < time(ToolKind::PVM));
}
