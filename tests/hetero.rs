//! End-to-end tests for heterogeneous platform topologies: the bundled
//! `examples/mixed.spec` (8 fast + 24 slow hosts across a WAN link,
//! plus a homogeneous `uniform` control) runs campaigns with zero Rust
//! changes, placement is deterministic — bit-identical across runs and
//! across the parallel campaign runner — and skewed host groups produce
//! measurably different times than the homogeneous equivalent.

use bytes::Bytes;
use pdc_tool_eval::campaign::campaigns::hetero_smoke;
use pdc_tool_eval::campaign::runner::{run_campaign, RecordStatus};
use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::Scale;
use pdc_tool_eval::mpt::runtime::{run_spmd, SpmdConfig};
use pdc_tool_eval::mpt::{ModelRegistry, ToolKind};
use pdc_tool_eval::simnet::platform::Platform;
use pdc_tool_eval::simnet::work::Work;
use std::path::Path;
use std::sync::OnceLock;

/// Loads `examples/mixed.spec` exactly once per test process and
/// returns `(mixed, uniform)` — the heterogeneous platform and its
/// homogeneous control.
fn mixed_and_uniform() -> (Platform, Platform) {
    static LOADED: OnceLock<(Platform, Platform)> = OnceLock::new();
    *LOADED.get_or_init(|| {
        let text = std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/mixed.spec"),
        )
        .expect("examples/mixed.spec readable");
        let loaded = ModelRegistry::global()
            .load_spec_text(&text)
            .expect("mixed spec loads");
        assert_eq!(loaded.platforms.len(), 2);
        (loaded.platforms[0], loaded.platforms[1])
    })
}

#[test]
fn ranks_place_onto_groups_deterministically() {
    let (mixed, _) = mixed_and_uniform();
    assert!(mixed.is_heterogeneous());
    assert_eq!(
        mixed.spec().topology.hetero_slug().as_deref(),
        Some("8fast-24slow")
    );
    let out = run_spmd(&SpmdConfig::new(mixed, ToolKind::P4, 12), |node| {
        (node.host().name.clone(), node.host().mflops)
    })
    .unwrap();
    for (rank, (name, mflops)) in out.results.iter().enumerate() {
        if rank < 8 {
            assert_eq!(name, "Fast workstation", "rank {rank}");
            assert_eq!(*mflops, 45.0);
        } else {
            assert_eq!(name, "Slow workstation", "rank {rank}");
            assert_eq!(*mflops, 4.5);
        }
    }
}

#[test]
fn cross_group_messages_pay_the_inter_link() {
    // Rank 0 echoes with rank 1 (both in the fast rack) and then with
    // rank 8 (across the WAN). The cross-group round trip must be
    // dominated by the WAN's 2 ms one-way latency.
    let (mixed, _) = mixed_and_uniform();
    let out = run_spmd(&SpmdConfig::new(mixed, ToolKind::P4, 9), |node| {
        let payload = Bytes::from_static(b"x");
        match node.rank() {
            0 => {
                let t0 = node.now();
                node.send(1, 1, payload.clone()).unwrap();
                let _ = node.recv(Some(1), Some(2)).unwrap();
                let intra = (node.now() - t0).as_millis_f64();
                let t1 = node.now();
                node.send(8, 3, payload).unwrap();
                let _ = node.recv(Some(8), Some(4)).unwrap();
                let inter = (node.now() - t1).as_millis_f64();
                (intra, inter)
            }
            1 => {
                let _ = node.recv(Some(0), Some(1)).unwrap();
                node.send(0, 2, payload).unwrap();
                (0.0, 0.0)
            }
            8 => {
                let _ = node.recv(Some(0), Some(3)).unwrap();
                node.send(0, 4, payload).unwrap();
                (0.0, 0.0)
            }
            _ => (0.0, 0.0),
        }
    })
    .unwrap();
    let (intra, inter) = out.results[0];
    assert!(
        inter > intra + 3.0,
        "cross-group echo ({inter} ms) must pay the WAN latency over intra-rack ({intra} ms)"
    );
}

#[test]
fn skewed_groups_slow_the_run_versus_the_homogeneous_control() {
    // The same compute-then-synchronize job at the same node count: the
    // mixed platform spans slow hosts (ranks 8+) and a WAN, so it must
    // finish measurably later than the all-fast uniform control.
    let (mixed, uniform) = mixed_and_uniform();
    let elapsed = |platform| {
        run_spmd(&SpmdConfig::new(platform, ToolKind::P4, 12), |node| {
            node.compute(Work::flops(9_000_000)); // 0.2 s fast, 2 s slow
            node.barrier().unwrap();
        })
        .unwrap()
        .elapsed
        .as_secs_f64()
    };
    let mixed_t = elapsed(mixed);
    let uniform_t = elapsed(uniform);
    assert!(
        mixed_t > 2.0 * uniform_t,
        "skew must show: mixed {mixed_t} s vs uniform {uniform_t} s"
    );
    // And per-rank finish times expose the skew inside one run: a slow
    // rank computes ~10x longer than a fast one before the barrier.
    let out = run_spmd(&SpmdConfig::new(mixed, ToolKind::P4, 12), |node| {
        node.compute(Work::flops(9_000_000));
        node.now().as_secs_f64()
    })
    .unwrap();
    assert!(out.results[11] > 5.0 * out.results[0]);
}

#[test]
fn heterogeneous_placement_is_bit_identical_across_runs() {
    let (mixed, _) = mixed_and_uniform();
    let run = || {
        run_spmd(&SpmdConfig::new(mixed, ToolKind::PVM, 12), |node| {
            let data = Bytes::from(vec![node.rank() as u8; 4096]);
            let got = node.ring_shift(data).unwrap();
            node.barrier().unwrap();
            (got.len(), node.now().as_nanos())
        })
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.rank_finish, b.rank_finish);
}

#[test]
fn hetero_campaign_is_bit_identical_across_the_parallel_runner() {
    let (mixed, uniform) = mixed_and_uniform();
    let campaign = hetero_smoke(&[mixed, uniform], Scale::Quick);
    assert!(!campaign.scenarios.is_empty());
    assert!(campaign.scenarios.iter().all(|s| s.platform == mixed));
    let serial = run_campaign(&campaign.scenarios, 1);
    let parallel = run_campaign(&campaign.scenarios, 4);
    assert_eq!(serial, parallel);
    for r in &serial {
        assert_eq!(
            r.status,
            RecordStatus::Ok,
            "{}: {:?}",
            r.scenario.key(),
            r.detail
        );
        let stats = r.stats.unwrap();
        assert_eq!(stats.min, stats.max, "{}", r.scenario.key());
        assert_eq!(stats.cv, 0.0, "{}", r.scenario.key());
    }
    // Store keys carry the topology slug, and the rendered stores agree
    // byte-for-byte.
    let text = render_jsonl(&serial, &StoreMeta::none());
    assert!(text.contains("/mixed/8fast-24slow/"));
    assert_eq!(text, render_jsonl(&parallel, &StoreMeta::none()));
}

#[test]
fn snapshot_of_the_registry_reloads_idempotently() {
    use pdc_tool_eval::mpt::spec::{parse_spec, render_spec};

    let (mixed, uniform) = mixed_and_uniform();
    let registry = ModelRegistry::global();
    let file = registry.snapshot();
    // The snapshot parses back to the same specs (render/parse identity
    // over the whole registry, heterogeneous platforms included)...
    let text = render_spec(&file);
    assert_eq!(parse_spec(&text).expect("snapshot parses"), file);
    // ...and re-registering it returns the original handles.
    let loaded = registry
        .load_spec_text(&text)
        .expect("snapshot re-registers");
    assert!(loaded.platforms.contains(&mixed));
    assert!(loaded.platforms.contains(&uniform));
}
