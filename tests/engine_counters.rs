//! Engine-counter truthfulness regressions.
//!
//! The engine's scheduling/delivery counters for a 64-rank scenario are
//! pinned to the exact values the pre-calendar-queue engine (PR 7:
//! virtual-time tracing + engine counters) reported, so scheduler
//! rework — the calendar queue, lazy rank materialization, the
//! direct-delivery fast path — cannot silently change what the counters
//! claim. A second test checks that opt-in batched-train pricing keeps
//! byte/fragment accounting identical to the per-fragment model while
//! actually collapsing scheduled events.

use bytes::Bytes;
use pdc_tool_eval::mpt::runtime::SpmdHarness;
use pdc_tool_eval::mpt::{Node, ToolKind};
use pdc_tool_eval::simnet::engine::{SimOutcome, Simulation};
use pdc_tool_eval::simnet::envelope::{Envelope, Matcher};
use pdc_tool_eval::simnet::flight::{Stage, TransmitPlan};
use pdc_tool_eval::simnet::host::HostSpec;
use pdc_tool_eval::simnet::ids::ProcId;
use pdc_tool_eval::simnet::net::NetworkKind;
use pdc_tool_eval::simnet::platform::PlatformSpec;
use pdc_tool_eval::simnet::time::SimDuration;
use pdc_tool_eval::simnet::trace::{CounterSummary, TraceSink};
use std::sync::{Arc, Mutex};

/// The 64-proc latency-only ring (the shape of `bench_engine`'s
/// `ring64`), 10 rounds.
fn ring64(rounds: u32) -> SimOutcome {
    const NPROCS: usize = 64;
    let mut sim = Simulation::new();
    for r in 0..NPROCS {
        let next = ProcId(((r + 1) % NPROCS) as u32);
        sim.spawn_indexed("ring", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let env = Envelope::new(ctx.pid(), next, round, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
                );
                let _ = ctx.recv(Matcher::tagged(round));
            }
        });
    }
    sim.run().expect("ring64 deadlocked")
}

/// Every engine counter for the 64-rank ring, pinned to the values the
/// PR 7 engine (binary-heap scheduler, per-fragment flights) reported.
/// One event and one cross-thread resume per message, every delivery on
/// the mailbox fast path, all 64 in-flight events resident in the queue.
#[test]
fn ring64_counters_match_the_pr7_engine() {
    let out = ring64(10);
    let c = CounterSummary::from_sim(&out);
    assert_eq!(c.events_scheduled, 640);
    assert_eq!(c.peak_queue_depth, 64);
    // 64 start resumes + one resume per delivered message.
    assert_eq!(c.direct_handoffs, 704);
    assert_eq!(c.inline_resumes, 0);
    assert_eq!(c.mailbox_fast_path_hits, 640);
    assert_eq!(c.messages_delivered, 640);
    assert_eq!(c.wire_bytes, 0);
    assert_eq!(out.end_time.as_micros_f64(), 100.0);
}

/// Batched trains must report the same per-fragment wire/link traffic as
/// the per-fragment model on a 64-rank circular shift — identical bytes,
/// fragments and timing, strictly fewer scheduled events — and the
/// queue-depth high-water mark stays resident (non-zero) either way.
#[test]
fn batched_trains_report_per_fragment_traffic_counters() {
    let platform = pdc_tool_eval::simnet::registry::register_platform(PlatformSpec::homogeneous(
        "Counter ATM LAN 64",
        "counter-atm-64",
        HostSpec::sun_ipx(),
        NetworkKind::AtmLan.params(),
        64,
        false,
    ))
    .unwrap();
    // ~4 ATM-MTU fragments per rank, all 64 tx links busy at once.
    let cshift = |node: &mut Node<'_>| {
        let next = (node.rank() + 1) % node.nprocs();
        node.send(next, 3, Bytes::from(vec![0u8; 36_000])).unwrap();
        node.recv(None, Some(3)).unwrap().data.len()
    };

    let run = |batch: bool| {
        let mut h = SpmdHarness::new(platform, 64).unwrap();
        h.set_batch_trains(batch);
        let sink = Arc::new(Mutex::new(TraceSink::new(64)));
        let out = h
            .run_perturbed_traced(ToolKind::P4, None, Some(Arc::clone(&sink)), cshift)
            .unwrap();
        let counters = sink.lock().unwrap().counter_summary(&out.sim);
        (out, counters)
    };

    let (plain, pc) = run(false);
    let (batched, bc) = run(true);

    assert_eq!(batched.elapsed, plain.elapsed);
    assert_eq!(batched.results, plain.results);
    // Traffic accounting is identical per fragment, batched or not.
    assert_eq!(bc.wire_bytes, pc.wire_bytes);
    assert_eq!(bc.messages_delivered, pc.messages_delivered);
    assert!(!pc.links.is_empty());
    assert_eq!(bc.links, pc.links);
    // What batching is allowed to change: the event count (down) — while
    // the queue-depth high-water mark stays a real resident measurement.
    assert!(
        bc.events_scheduled < pc.events_scheduled,
        "batched {} vs per-fragment {}",
        bc.events_scheduled,
        pc.events_scheduled
    );
    assert!(pc.peak_queue_depth > 0);
    assert!(bc.peak_queue_depth > 0);
}
