//! End-to-end tests for spec-declared campaigns: the `[campaign]`
//! stanza in `examples/mixed.spec` materializes into a `ScenarioGrid`
//! and runs with zero Rust changes, the registry snapshot serializes
//! the stanza back byte-exactly, and `Topology::remix` variants (the
//! `--remix` CLI flag's building block) register and key distinctly.

use pdc_tool_eval::campaign::campaigns::{self, Campaign};
use pdc_tool_eval::campaign::runner::{run_campaign, RecordStatus};
use pdc_tool_eval::campaign::store::{parse_jsonl, render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::{Kernel, Scale};
use pdc_tool_eval::mpt::registry::LoadedSpecs;
use pdc_tool_eval::mpt::spec::render_campaign;
use pdc_tool_eval::mpt::{ModelRegistry, ToolKind};
use std::path::Path;
use std::sync::OnceLock;

fn mixed_spec_text() -> String {
    std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/mixed.spec"))
        .expect("examples/mixed.spec readable")
}

/// Loads `examples/mixed.spec` exactly once per test process.
fn loaded() -> &'static LoadedSpecs {
    static LOADED: OnceLock<LoadedSpecs> = OnceLock::new();
    LOADED.get_or_init(|| {
        ModelRegistry::global()
            .load_spec_text(&mixed_spec_text())
            .expect("mixed spec loads")
    })
}

/// Materializes one of the file's stanzas the way the CLI does.
fn materialize(slug: &str) -> Campaign {
    let l = loaded();
    assert_eq!(l.campaigns.len(), 3);
    let spec = l
        .campaigns
        .iter()
        .find(|c| c.slug == slug)
        .unwrap_or_else(|| panic!("campaign '{slug}' declared in mixed.spec"));
    campaigns::from_spec(spec, &l.tools, &l.platforms, Scale::Quick)
        .unwrap_or_else(|e| panic!("{slug} materializes: {e}"))
}

/// Materializes the file's `mixed-sweep` stanza the way the CLI does.
fn mixed_sweep() -> Campaign {
    let l = loaded();
    assert_eq!(l.campaigns[0].slug, "mixed-sweep");
    materialize("mixed-sweep")
}

#[test]
fn spec_declared_campaign_runs_end_to_end() {
    let campaign = mixed_sweep();
    assert_eq!(campaign.name, "mixed-sweep");
    assert!(campaign.title.contains("Mixed-cluster sweep"));

    // No `tools` selector: defaults to the built-in trio (the file
    // declares no tools). No `platforms` selector: sweeps the file's
    // own two platforms — the heterogeneous mix and the uniform
    // control.
    let tools: std::collections::HashSet<_> = campaign.scenarios.iter().map(|s| s.tool).collect();
    assert_eq!(tools.len(), ToolKind::builtin().len());
    let platforms: std::collections::HashSet<_> =
        campaign.scenarios.iter().map(|s| s.platform).collect();
    assert_eq!(platforms.len(), 2);

    // Validity filtering unchanged: PVM global-sum points are dropped,
    // Express is dropped on the WAN-flagged mixed platform.
    assert!(campaign
        .scenarios
        .iter()
        .all(|s| s.tool != ToolKind::PVM || s.kernel != Kernel::GlobalSum));

    let records = run_campaign(&campaign.scenarios, 4);
    assert_eq!(records.len(), campaign.scenarios.len());
    for r in &records {
        assert_eq!(
            r.status,
            RecordStatus::Ok,
            "{}: {:?}",
            r.scenario.key(),
            r.detail
        );
    }

    // Store keys carry the topology slug for the mix and the plain form
    // for the control; the store round-trips and is deterministic
    // across the parallel runner.
    let text = render_jsonl(&records, &StoreMeta::none());
    assert!(
        text.contains("/mixed/8fast-24slow/n12/"),
        "{}",
        &text[..200]
    );
    assert!(text.contains("/uniform/n12/"));
    let parsed = parse_jsonl(&text).expect("store parses");
    assert_eq!(parsed.len(), records.len());
    let serial = run_campaign(&campaign.scenarios, 1);
    assert_eq!(render_jsonl(&serial, &StoreMeta::none()), text);
}

#[test]
fn snapshot_round_trips_the_stanzas_byte_exactly() {
    let l = loaded();
    let snapshot = pdc_tool_eval::mpt::spec::render_spec(&ModelRegistry::global().snapshot());
    // Every stanza as committed in examples/mixed.spec is in canonical
    // form — rendering the parsed declaration reproduces its bytes —
    // and the registry snapshot (the `pdceval snapshot` payload)
    // carries the identical bytes.
    for c in &l.campaigns {
        let canonical = render_campaign(c);
        assert!(
            mixed_spec_text().contains(&canonical),
            "examples/mixed.spec [campaign {}] is not in canonical render form:\n{canonical}",
            c.slug
        );
        assert!(snapshot.contains(&canonical), "snapshot misses {}", c.slug);
    }
    for p in &l.perturbs {
        let canonical = pdc_tool_eval::mpt::spec::render_perturb(&p.spec());
        assert!(
            mixed_spec_text().contains(&canonical),
            "examples/mixed.spec [perturb {}] is not in canonical render form:\n{canonical}",
            p.slug()
        );
        assert!(
            snapshot.contains(&canonical),
            "snapshot misses {}",
            p.slug()
        );
    }
}

#[test]
fn chaos_sweep_runs_clean_plus_two_seeds_and_replays_bit_identically() {
    use pdc_tool_eval::campaign::diff::degradation_summary;

    let campaign = materialize("chaos-sweep");
    // Fan-out: one clean copy of the grid plus one per seed.
    assert_eq!(campaign.scenarios.len() % 3, 0);
    let clean = campaign
        .scenarios
        .iter()
        .filter(|s| s.perturb.is_none())
        .count();
    assert_eq!(clean * 3, campaign.scenarios.len());
    for seed in [1, 2] {
        assert_eq!(
            campaign
                .scenarios
                .iter()
                .filter(|s| s.perturb.is_some_and(|p| p.seed == seed))
                .count(),
            clean
        );
    }

    let records = run_campaign(&campaign.scenarios, 4);
    assert!(records.iter().all(|r| r.status == RecordStatus::Ok));
    let text = render_jsonl(&records, &StoreMeta::none());
    assert!(text.contains("/chaos/seed1\""));
    assert!(text.contains("/chaos/seed2\""));

    // Same seeds replay bit-identically, serial or parallel.
    let replay = run_campaign(&campaign.scenarios, 1);
    assert_eq!(render_jsonl(&replay, &StoreMeta::none()), text);

    // The degradation summary sees every tool under chaos and reports a
    // real slowdown against the clean counterpart points.
    let summary = degradation_summary(&parse_jsonl(&text).unwrap());
    assert!(!summary.is_empty());
    for entry in &summary {
        assert_eq!(entry.perturb, "chaos");
        assert!(entry.mean_slowdown > 1.0, "{entry:?}");
        assert!(entry.survived(), "{entry:?}");
    }
}

#[test]
fn crash_sweep_terminates_with_structured_injected_faults() {
    let campaign = materialize("crash-sweep");
    assert!(campaign.scenarios.iter().all(|s| s.perturb.is_some()));
    let records = run_campaign(&campaign.scenarios, 4);
    assert!(!records.is_empty());
    // Every point terminates (no deadlock) as a structured
    // fault-injection error naming the crashed rank — the sentinel the
    // diff gate and the CLI both key on.
    for r in &records {
        assert_eq!(r.status, RecordStatus::Error, "{}", r.scenario.key());
        let detail = r.detail.as_deref().unwrap_or("");
        assert!(
            detail.contains("rank 1 crashed by fault injection"),
            "{}: {detail}",
            r.scenario.key()
        );
    }
}

#[test]
fn remix_variants_register_and_key_distinctly() {
    use pdc_tool_eval::campaign::Scenario;
    use pdc_tool_eval::simnet::platform::PlatformSpec;

    let l = loaded();
    let mixed = *l
        .platforms
        .iter()
        .find(|p| p.slug() == "mixed")
        .expect("mixed platform loaded");
    // What `pdceval --remix fast=4,slow=12` registers.
    let spec = mixed.spec();
    let topology = spec.topology.remix(&[4, 12]);
    let mix = topology.hetero_slug().expect("still heterogeneous");
    assert_eq!(mix, "4fast-12slow");
    let remixed = ModelRegistry::global()
        .register_platform(PlatformSpec {
            name: format!("{} (remix {mix})", spec.name),
            slug: format!("{}-{mix}", spec.slug),
            max_nodes: topology.total_hosts(),
            topology,
            wan: spec.wan,
        })
        .expect("remix registers");
    assert_eq!(remixed.max_nodes(), 16);

    // Keys distinguish the mixes, so one store can hold both sweeps.
    let key = |platform| {
        Scenario {
            kernel: Kernel::Broadcast,
            tool: ToolKind::P4,
            platform,
            nprocs: 8,
            size: 10_000,
            reps: 1,
            perturb: None,
        }
        .key()
    };
    assert_eq!(key(mixed), "broadcast/p4/mixed/8fast-24slow/n8/s10000");
    assert_eq!(
        key(remixed),
        "broadcast/p4/mixed-4fast-12slow/4fast-12slow/n8/s10000"
    );

    // A campaign materialized over the extended platform set (what
    // `--remix` appends) sweeps the new mix alongside the originals.
    let mut platforms = l.platforms.clone();
    platforms.push(remixed);
    let campaign =
        campaigns::from_spec(&l.campaigns[0], &l.tools, &platforms, Scale::Quick).unwrap();
    assert!(campaign.scenarios.iter().any(|s| s.platform == remixed));
    let records = run_campaign(
        &campaign
            .scenarios
            .iter()
            .filter(|s| s.platform == remixed)
            .cloned()
            .collect::<Vec<_>>(),
        2,
    );
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.status == RecordStatus::Ok));
}
