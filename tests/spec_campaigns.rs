//! End-to-end tests for spec-declared campaigns: the `[campaign]`
//! stanza in `examples/mixed.spec` materializes into a `ScenarioGrid`
//! and runs with zero Rust changes, the registry snapshot serializes
//! the stanza back byte-exactly, and `Topology::remix` variants (the
//! `--remix` CLI flag's building block) register and key distinctly.

use pdc_tool_eval::campaign::campaigns::{self, Campaign};
use pdc_tool_eval::campaign::runner::{run_campaign, RecordStatus};
use pdc_tool_eval::campaign::store::{parse_jsonl, render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::{Kernel, Scale};
use pdc_tool_eval::mpt::registry::LoadedSpecs;
use pdc_tool_eval::mpt::spec::render_campaign;
use pdc_tool_eval::mpt::{ModelRegistry, ToolKind};
use std::path::Path;
use std::sync::OnceLock;

fn mixed_spec_text() -> String {
    std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/mixed.spec"))
        .expect("examples/mixed.spec readable")
}

/// Loads `examples/mixed.spec` exactly once per test process.
fn loaded() -> &'static LoadedSpecs {
    static LOADED: OnceLock<LoadedSpecs> = OnceLock::new();
    LOADED.get_or_init(|| {
        ModelRegistry::global()
            .load_spec_text(&mixed_spec_text())
            .expect("mixed spec loads")
    })
}

/// Materializes the file's `mixed-sweep` stanza the way the CLI does.
fn mixed_sweep() -> Campaign {
    let l = loaded();
    assert_eq!(l.campaigns.len(), 1);
    assert_eq!(l.campaigns[0].slug, "mixed-sweep");
    campaigns::from_spec(&l.campaigns[0], &l.tools, &l.platforms, Scale::Quick)
        .expect("mixed-sweep materializes")
}

#[test]
fn spec_declared_campaign_runs_end_to_end() {
    let campaign = mixed_sweep();
    assert_eq!(campaign.name, "mixed-sweep");
    assert!(campaign.title.contains("Mixed-cluster sweep"));

    // No `tools` selector: defaults to the built-in trio (the file
    // declares no tools). No `platforms` selector: sweeps the file's
    // own two platforms — the heterogeneous mix and the uniform
    // control.
    let tools: std::collections::HashSet<_> = campaign.scenarios.iter().map(|s| s.tool).collect();
    assert_eq!(tools.len(), ToolKind::builtin().len());
    let platforms: std::collections::HashSet<_> =
        campaign.scenarios.iter().map(|s| s.platform).collect();
    assert_eq!(platforms.len(), 2);

    // Validity filtering unchanged: PVM global-sum points are dropped,
    // Express is dropped on the WAN-flagged mixed platform.
    assert!(campaign
        .scenarios
        .iter()
        .all(|s| s.tool != ToolKind::PVM || s.kernel != Kernel::GlobalSum));

    let records = run_campaign(&campaign.scenarios, 4);
    assert_eq!(records.len(), campaign.scenarios.len());
    for r in &records {
        assert_eq!(
            r.status,
            RecordStatus::Ok,
            "{}: {:?}",
            r.scenario.key(),
            r.detail
        );
    }

    // Store keys carry the topology slug for the mix and the plain form
    // for the control; the store round-trips and is deterministic
    // across the parallel runner.
    let text = render_jsonl(&records, &StoreMeta::none());
    assert!(
        text.contains("/mixed/8fast-24slow/n12/"),
        "{}",
        &text[..200]
    );
    assert!(text.contains("/uniform/n12/"));
    let parsed = parse_jsonl(&text).expect("store parses");
    assert_eq!(parsed.len(), records.len());
    let serial = run_campaign(&campaign.scenarios, 1);
    assert_eq!(render_jsonl(&serial, &StoreMeta::none()), text);
}

#[test]
fn snapshot_round_trips_the_stanza_byte_exactly() {
    let l = loaded();
    // The stanza as committed in examples/mixed.spec is in canonical
    // form: rendering the parsed declaration reproduces its bytes...
    let canonical = render_campaign(&l.campaigns[0]);
    assert!(
        mixed_spec_text().contains(&canonical),
        "examples/mixed.spec stanza is not in canonical render form:\n{canonical}"
    );
    // ...and the registry snapshot (the `pdceval snapshot` payload)
    // carries the identical bytes.
    let snapshot = pdc_tool_eval::mpt::spec::render_spec(&ModelRegistry::global().snapshot());
    assert!(snapshot.contains(&canonical));
}

#[test]
fn remix_variants_register_and_key_distinctly() {
    use pdc_tool_eval::campaign::Scenario;
    use pdc_tool_eval::simnet::platform::PlatformSpec;

    let l = loaded();
    let mixed = *l
        .platforms
        .iter()
        .find(|p| p.slug() == "mixed")
        .expect("mixed platform loaded");
    // What `pdceval --remix fast=4,slow=12` registers.
    let spec = mixed.spec();
    let topology = spec.topology.remix(&[4, 12]);
    let mix = topology.hetero_slug().expect("still heterogeneous");
    assert_eq!(mix, "4fast-12slow");
    let remixed = ModelRegistry::global()
        .register_platform(PlatformSpec {
            name: format!("{} (remix {mix})", spec.name),
            slug: format!("{}-{mix}", spec.slug),
            max_nodes: topology.total_hosts(),
            topology,
            wan: spec.wan,
        })
        .expect("remix registers");
    assert_eq!(remixed.max_nodes(), 16);

    // Keys distinguish the mixes, so one store can hold both sweeps.
    let key = |platform| {
        Scenario {
            kernel: Kernel::Broadcast,
            tool: ToolKind::P4,
            platform,
            nprocs: 8,
            size: 10_000,
            reps: 1,
        }
        .key()
    };
    assert_eq!(key(mixed), "broadcast/p4/mixed/8fast-24slow/n8/s10000");
    assert_eq!(
        key(remixed),
        "broadcast/p4/mixed-4fast-12slow/4fast-12slow/n8/s10000"
    );

    // A campaign materialized over the extended platform set (what
    // `--remix` appends) sweeps the new mix alongside the originals.
    let mut platforms = l.platforms.clone();
    platforms.push(remixed);
    let campaign =
        campaigns::from_spec(&l.campaigns[0], &l.tools, &platforms, Scale::Quick).unwrap();
    assert!(campaign.scenarios.iter().any(|s| s.platform == remixed));
    let records = run_campaign(
        &campaign
            .scenarios
            .iter()
            .filter(|s| s.platform == remixed)
            .cloned()
            .collect::<Vec<_>>(),
        2,
    );
    assert!(!records.is_empty());
    assert!(records.iter().all(|r| r.status == RecordStatus::Ok));
}
