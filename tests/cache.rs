//! Cache-key stability: the content-addressed campaign cache is only
//! sound if (a) spec hashing is a fixpoint of render∘parse — a snapshot
//! reloaded into a fresh process addresses the same entries — and
//! (b) every observable edit to a spec changes its hash, so stale
//! results can never be served for a changed model.

use pdc_tool_eval::campaign::cache::{run_campaign_cached, scenario_digest, CampaignCache};
use pdc_tool_eval::campaign::runner::CampaignOptions;
use pdc_tool_eval::campaign::scenario::Kernel;
use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::ScenarioGrid;
use pdc_tool_eval::mpt::hash::fnv1a_64;
use pdc_tool_eval::mpt::spec::{
    parse_spec, render_perturb, render_platform, render_spec, render_tool, PortPolicy, Support,
};
use pdc_tool_eval::mpt::{ModelRegistry, ToolKind};
use pdc_tool_eval::simnet::platform::Platform;

#[test]
fn spec_hash_is_a_fixpoint_of_render_and_parse() {
    let registry = ModelRegistry::global();
    let rendered = render_spec(&registry.snapshot());
    let reparsed = parse_spec(&rendered).expect("snapshot must re-parse");
    let rerendered = render_spec(&reparsed);
    assert_eq!(rendered, rerendered, "render ∘ parse must be the identity");
    assert_eq!(registry.spec_hash(), fnv1a_64(rerendered.as_bytes()));
}

#[test]
fn per_stanza_hashes_are_fixpoints_too() {
    let registry = ModelRegistry::global();
    for tool in ToolKind::builtin() {
        let text = render_tool(&tool.spec());
        let file = parse_spec(&text).expect("tool stanza must parse");
        assert_eq!(render_tool(&file.tools[0]), text);
        assert_eq!(registry.tool_hash(tool), fnv1a_64(text.as_bytes()));
    }
    for platform in [Platform::SUN_ETHERNET, Platform::SP1_SWITCH] {
        let text = render_platform(&platform.spec());
        let file = parse_spec(&text).expect("platform stanza must parse");
        assert_eq!(render_platform(&file.platforms[0]), text);
        assert_eq!(registry.platform_hash(platform), fnv1a_64(text.as_bytes()));
    }
}

/// Applies each mutation to a fresh copy of the spec and asserts the
/// stanza hash moved.
type Edits<'a, S> = &'a [(&'a str, &'a dyn Fn(&mut S))];

fn assert_edits_rekey<S: Clone>(base: &S, render: impl Fn(&S) -> String, edits: Edits<'_, S>) {
    let baseline = fnv1a_64(render(base).as_bytes());
    for (what, edit) in edits {
        let mut spec = base.clone();
        edit(&mut spec);
        assert_ne!(
            fnv1a_64(render(&spec).as_bytes()),
            baseline,
            "editing {what} must change the content hash"
        );
    }
}

#[test]
fn every_tool_spec_field_edit_changes_the_hash() {
    let base = ToolKind::P4.spec();
    assert_edits_rekey(
        &*base,
        render_tool,
        &[
            ("name", &|s| s.name.push('X')),
            ("slug", &|s| s.slug.push('x')),
            ("primitives", &|s| {
                s.primitives[0] = Some("renamed_send".to_string())
            }),
            ("profile.send_alpha_us", &|s| s.profile.send_alpha_us += 1.0),
            ("profile.header_bytes", &|s| s.profile.header_bytes += 1),
            ("profile.daemon_routed", &|s| {
                s.profile.daemon_routed = !s.profile.daemon_routed
            }),
            ("direct_profile.recv_beta", &|s| {
                s.direct_profile.recv_beta_us_per_byte += 0.5
            }),
            ("ports", &|s| {
                s.ports = PortPolicy::Deny(vec!["sun-eth".to_string()])
            }),
            ("adl", &|s| s.adl[0] = Support::NotSupported),
            ("programming_models", &|s| {
                s.programming_models.push("dataflow".to_string())
            }),
        ],
    );
}

#[test]
fn every_platform_spec_field_edit_changes_the_hash() {
    let base = Platform::SUN_ETHERNET.spec();
    assert_edits_rekey(
        &*base,
        render_platform,
        &[
            ("name", &|s| s.name.push('X')),
            ("slug", &|s| s.slug.push('x')),
            ("max_nodes", &|s| s.max_nodes += 1),
            ("wan", &|s| s.wan = !s.wan),
            ("topology.host mflops", &|s| {
                s.topology.groups[0].host.mflops += 1.0
            }),
            ("topology.link bandwidth", &|s| {
                s.topology.groups[0].link.bandwidth_mbps *= 2.0
            }),
            ("topology.link mtu", &|s| s.topology.groups[0].link.mtu += 8),
        ],
    );
}

#[test]
fn every_perturb_spec_field_edit_changes_the_hash() {
    let mut base = pdc_tool_eval::simnet::perturb::PerturbSpec::quiet("cache-rekey-test");
    base.jitter = 0.1;
    base.loss = 0.01;
    base.loss_timeout_us = 500.0;
    assert_edits_rekey(
        &base,
        render_perturb,
        &[
            ("slug", &|s| s.slug.push('x')),
            ("title", &|s| s.title = Some("edited".to_string())),
            ("jitter", &|s| s.jitter += 0.05),
            ("congestion", &|s| s.congestion += 0.2),
            ("stragglers", &|s| {
                s.stragglers.push(("slow".to_string(), 2.0))
            }),
            ("loss", &|s| s.loss += 0.01),
            ("loss_timeout_us", &|s| s.loss_timeout_us += 100.0),
            ("crash_rank", &|s| {
                s.crash_rank = Some(1);
                s.crash_at_us = Some(10.0);
            }),
        ],
    );
}

#[test]
fn digests_ignore_unrelated_registrations() {
    let sc = ScenarioGrid::new()
        .kernels([Kernel::Broadcast])
        .tools([ToolKind::P4])
        .platforms([Platform::SUN_ETHERNET])
        .nprocs([4])
        .sizes([4096])
        .reps(2)
        .scenarios()
        .remove(0);
    let before = scenario_digest(&sc);
    // Registering a brand-new perturbation model touches the registry
    // but not this scenario's inputs: the digest must hold still.
    let mut spec = pdc_tool_eval::simnet::perturb::PerturbSpec::quiet("cache-unrelated-model");
    spec.jitter = 0.9;
    ModelRegistry::global().register_perturb(spec).unwrap();
    assert_eq!(scenario_digest(&sc), before);
}

/// End-to-end speedup sanity: a warm run over an application campaign
/// must be far faster than the cold run that populated the cache. The
/// assertion is deliberately loose (2×, against a ≥10× typical margin)
/// so scheduler noise cannot flake it — the CI smoke step checks the
/// user-visible 100%-hit property separately.
#[test]
fn warm_runs_skip_execution_and_are_faster() {
    let dir = std::env::temp_dir().join(format!("pdceval-cache-speed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenarios = ScenarioGrid::new()
        .kernels([Kernel::App {
            app: pdc_tool_eval::campaign::scenario::AplApp::Sorting,
            scale: pdc_tool_eval::campaign::scenario::Scale::Quick,
        }])
        .tools([ToolKind::P4, ToolKind::EXPRESS])
        .platforms([Platform::ALPHA_FDDI])
        .nprocs([2, 4, 8])
        .sizes([0])
        .reps(2)
        .scenarios();
    let meta = StoreMeta::none();
    let opts = CampaignOptions::default();

    let mut cache = CampaignCache::open(&dir).unwrap();
    let cold_t = std::time::Instant::now();
    let (cold, r) = run_campaign_cached(&scenarios, 1, &opts, &mut cache, &meta);
    let cold_t = cold_t.elapsed();
    assert_eq!(r.misses, scenarios.len());
    drop(cache);

    let mut cache = CampaignCache::open(&dir).unwrap();
    let warm_t = std::time::Instant::now();
    let (warm, r) = run_campaign_cached(&scenarios, 1, &opts, &mut cache, &meta);
    let warm_t = warm_t.elapsed();
    assert_eq!(r.hits, scenarios.len());
    assert_eq!(
        render_jsonl(&warm, &meta),
        render_jsonl(&cold, &meta),
        "warm store must be byte-identical"
    );
    assert!(
        warm_t < cold_t / 2,
        "warm run ({warm_t:?}) should be far faster than cold ({cold_t:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
