//! Cross-crate integration tests: the full methodology running end to
//! end, and the paper's headline claims holding on the simulated testbed.

use pdc_tool_eval::core::apl::{app_sweep, AplApp, AplConfig, Scale};
use pdc_tool_eval::core::experiments;
use pdc_tool_eval::core::score::{Evaluator, LevelWeights, Measurement};
use pdc_tool_eval::core::tpl::{send_recv_sweep, SendRecvConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

/// The paper's Table 3 shape: p4 fastest everywhere; PVM beats Express
/// at large messages; Express beats PVM at small messages on ATM.
#[test]
fn table3_orderings_hold() {
    for platform in [Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN] {
        let t = |tool, kb| {
            send_recv_sweep(&SendRecvConfig {
                platform,
                tool,
                sizes_kb: vec![kb],
                iters: 1,
            })
            .unwrap()[0]
                .millis
        };
        for kb in [0, 16, 64] {
            let p4 = t(ToolKind::P4, kb);
            let pvm = t(ToolKind::PVM, kb);
            let ex = t(ToolKind::EXPRESS, kb);
            assert!(
                p4 < pvm && p4 < ex,
                "{platform} {kb}KB: p4={p4} pvm={pvm} ex={ex}"
            );
        }
        // Large messages: PVM < Express.
        assert!(
            t(ToolKind::PVM, 64) < t(ToolKind::EXPRESS, 64),
            "{platform}"
        );
        // Small messages: Express < PVM (the paper's crossover).
        assert!(t(ToolKind::EXPRESS, 0) < t(ToolKind::PVM, 0), "{platform}");
    }
}

/// The paper's WAN claim: NYNET performance is close to ATM LAN
/// (within ~25% at 64 KB) and far better than shared Ethernet.
#[test]
fn wan_is_comparable_to_lan() {
    let t = |platform| {
        send_recv_sweep(&SendRecvConfig {
            platform,
            tool: ToolKind::P4,
            sizes_kb: vec![64],
            iters: 1,
        })
        .unwrap()[0]
            .millis
    };
    let lan = t(Platform::SUN_ATM_LAN);
    let wan = t(Platform::SUN_ATM_WAN);
    let eth = t(Platform::SUN_ETHERNET);
    assert!(wan > lan, "propagation must cost something");
    assert!(wan < lan * 1.25, "wan {wan} too far from lan {lan}");
    assert!(wan < eth / 3.0, "ATM WAN should crush shared Ethernet");
}

/// Figure 5's winners: p4 takes JPEG and FFT, PVM takes sorting, Express
/// takes Monte Carlo (on Alpha/FDDI at 8 processors, paper scale).
#[test]
fn figure5_winners_match_paper() {
    let time = |app, tool| {
        app_sweep(&AplConfig {
            app,
            platform: Platform::ALPHA_FDDI,
            tool,
            procs: vec![8],
            scale: Scale::Paper,
        })
        .unwrap()[0]
            .seconds
    };
    for (app, winner) in [
        (AplApp::Jpeg, ToolKind::P4),
        (AplApp::Fft, ToolKind::P4),
        (AplApp::Sorting, ToolKind::PVM),
        (AplApp::MonteCarlo, ToolKind::EXPRESS),
    ] {
        let times: Vec<(ToolKind, f64)> = ToolKind::all()
            .into_iter()
            .map(|t| (t, time(app, t)))
            .collect();
        let best = times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, winner, "{app:?}: {times:?}");
    }
}

/// SP-1 nodes are slower than Alphas (Figure 6 vs Figure 5).
#[test]
fn sp1_is_slower_than_alpha_cluster() {
    let time = |platform| {
        app_sweep(&AplConfig {
            app: AplApp::Jpeg,
            platform,
            tool: ToolKind::P4,
            procs: vec![4],
            scale: Scale::Quick,
        })
        .unwrap()[0]
            .seconds
    };
    assert!(time(Platform::SP1_SWITCH) > 1.5 * time(Platform::ALPHA_FDDI));
}

/// Express cannot run the NYNET experiments (Table 3 / Figure 7).
#[test]
fn express_absent_from_wan_experiments() {
    let cfg = AplConfig {
        app: AplApp::Jpeg,
        platform: Platform::SUN_ATM_WAN,
        tool: ToolKind::EXPRESS,
        procs: vec![2],
        scale: Scale::Quick,
    };
    assert!(app_sweep(&cfg).is_err());
}

/// The full experiment registry regenerates every artifact at quick
/// scale, and the figures carry CSV series.
#[test]
fn all_experiments_regenerate() {
    let artifacts = experiments::run_all(Scale::Quick).expect("regeneration failed");
    assert_eq!(artifacts.len(), 12);
    for a in &artifacts {
        assert!(!a.body.is_empty(), "{} empty", a.id);
        if a.id.starts_with("fig") {
            let csv = a.csv.as_ref().expect("figure csv");
            assert!(csv.lines().count() > 2, "{} csv too short", a.id);
        }
    }
}

/// A full weighted evaluation built from live measurements ranks p4
/// first for a performance user (the paper's overall conclusion).
#[test]
fn performance_user_evaluation_prefers_p4() {
    let mut eval = Evaluator::new();
    eval.level_weights(LevelWeights::performance_user());
    for kb in [1u64, 64] {
        let mut times = Vec::new();
        for tool in ToolKind::all() {
            let pts = send_recv_sweep(&SendRecvConfig {
                platform: Platform::SUN_ATM_LAN,
                tool,
                sizes_kb: vec![kb],
                iters: 1,
            })
            .unwrap();
            times.push((tool, Some(pts[0].millis)));
        }
        eval.tpl_measurement(Measurement::new(format!("snd/rcv {kb}KB"), times));
    }
    for app in [AplApp::Jpeg, AplApp::Fft] {
        let mut times = Vec::new();
        for tool in ToolKind::all() {
            let pts = app_sweep(&AplConfig {
                app,
                platform: Platform::ALPHA_FDDI,
                tool,
                procs: vec![4],
                scale: Scale::Quick,
            })
            .unwrap();
            times.push((tool, Some(pts[0].seconds)));
        }
        eval.apl_measurement(Measurement::new(format!("{app} x4"), times));
    }
    let ranked = eval.evaluate();
    assert_eq!(ranked[0].tool, ToolKind::P4, "{ranked:?}");
}

/// Determinism across the whole stack: regenerating Table 3 twice gives
/// byte-identical artifacts.
#[test]
fn table3_artifact_is_deterministic() {
    let a = experiments::table3().unwrap();
    let b = experiments::table3().unwrap();
    assert_eq!(a.body, b.body);
}
