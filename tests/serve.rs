//! `pdceval serve` front-end integration: two concurrent clients with
//! overlapping sweep grids must each receive complete, byte-identical
//! results while every distinct scenario executes exactly once —
//! whichever of the single-flight table or the results cache absorbs
//! the duplicate, the executor pool never runs a scenario twice.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use pdc_tool_eval::campaign::cache::CampaignCache;
use pdc_tool_eval::campaign::scenario::Scale;
use pdc_tool_eval::campaign::store::StoreMeta;
use pdc_tool_eval::campaign::{ServeState, Server};

/// Sends one request line and collects response lines up to and
/// including the `"done"` summary (or an error line).
fn request(addr: std::net::SocketAddr, line: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut lines = Vec::new();
    for read in BufReader::new(stream).lines() {
        let read = read.expect("read");
        let terminal = read.contains("\"done\"") || read.contains("\"error\"");
        lines.push(read);
        if terminal {
            break;
        }
    }
    lines
}

fn sweep(sizes: &str) -> String {
    format!(
        "{{\"op\": \"sweep\", \"kernels\": \"ring\", \"tools\": \"p4 pvm\", \
         \"platforms\": \"sun-eth\", \"nprocs\": \"4\", \"sizes\": \"{sizes}\", \"reps\": 2}}"
    )
}

#[test]
fn concurrent_overlapping_sweeps_single_flight_and_agree() {
    let dir = std::env::temp_dir().join(format!("pdceval-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CampaignCache::open(&dir).expect("open cache");
    let state = Arc::new(ServeState::new(
        cache,
        2,
        Vec::new(),
        Scale::Quick,
        StoreMeta::none(),
    ));
    let mut server = Server::new(Arc::clone(&state));
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let server_thread = std::thread::spawn(move || server.run());

    // Client A sweeps sizes {0, 4096}; client B sweeps {4096, 16384}.
    // 2 tools × 3 distinct sizes = 6 distinct scenarios, 2 shared.
    let start = Arc::new(Barrier::new(2));
    let spawn_client = |sizes: &'static str| {
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            start.wait();
            request(addr, &sweep(sizes))
        })
    };
    let a = spawn_client("0 4096");
    let b = spawn_client("4096 16384");
    let a = a.join().expect("client A");
    let b = b.join().expect("client B");

    for (name, lines) in [("A", &a), ("B", &b)] {
        assert_eq!(
            lines.len(),
            5,
            "client {name} gets 4 records + done: {lines:?}"
        );
        assert!(
            lines[4].contains("\"done\": true") && lines[4].contains("\"points\": 4"),
            "client {name} summary: {}",
            lines[4]
        );
    }
    assert_eq!(
        state.executed_total(),
        6,
        "each distinct scenario must execute exactly once across both clients"
    );

    // The two shared scenarios (size 4096) must render byte-identically
    // for both clients — same digest, same entry, same provenance.
    let shared: Vec<&String> = a[..4].iter().filter(|l| b[..4].contains(l)).collect();
    assert_eq!(shared.len(), 2, "A and B overlap on exactly two scenarios");

    // A third sweep of the union is all hits: nothing new executes.
    let all = request(addr, &sweep("0 4096 16384"));
    assert_eq!(all.len(), 7);
    assert!(
        all[6].contains("\"hits\": 6") && all[6].contains("\"executed\": 0"),
        "union sweep should be served entirely from cache: {}",
        all[6]
    );
    assert_eq!(state.executed_total(), 6);

    let bye = request(addr, "{\"op\": \"shutdown\"}");
    assert!(bye[0].contains("\"ok\""), "shutdown ack: {bye:?}");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}
