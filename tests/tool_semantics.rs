//! Semantic contracts of the tool layer, exercised across all three
//! tools: ordering guarantees, collective correctness at awkward sizes,
//! capability gaps, and failure injection.

use bytes::Bytes;
use pdc_tool_eval::mpt::error::{RunError, ToolError};
use pdc_tool_eval::mpt::message::MsgWriter;
use pdc_tool_eval::mpt::runtime::{run_spmd, SpmdConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::error::SimError;
use pdc_tool_eval::simnet::platform::Platform;

fn cfg(tool: ToolKind, n: usize) -> SpmdConfig {
    SpmdConfig::new(Platform::SUN_ATM_LAN, tool, n)
}

/// Messages between one (src, dst) pair are delivered in send order for
/// every tool (FIFO channel semantics, which the collectives rely on).
#[test]
fn pairwise_fifo_ordering() {
    for tool in ToolKind::all() {
        let out = run_spmd(&cfg(tool, 2), |node| {
            if node.rank() == 0 {
                for i in 0..20u32 {
                    let mut w = MsgWriter::new();
                    w.put_u32(i);
                    node.send(1, 7, w.freeze()).unwrap();
                }
                Vec::new()
            } else {
                let mut seen = Vec::new();
                for _ in 0..20 {
                    let msg = node.recv(Some(0), Some(7)).unwrap();
                    let mut r = pdc_tool_eval::mpt::message::MsgReader::new(msg.data);
                    seen.push(r.get_u32().unwrap());
                }
                seen
            }
        })
        .unwrap();
        assert_eq!(out.results[1], (0..20).collect::<Vec<u32>>(), "{tool}");
    }
}

/// Broadcast works from every root, not just rank 0.
#[test]
fn broadcast_from_every_root() {
    for tool in ToolKind::all() {
        for root in 0..4 {
            let out = run_spmd(&cfg(tool, 4), move |node| {
                let data = if node.rank() == root {
                    Bytes::from(vec![root as u8; 100])
                } else {
                    Bytes::new()
                };
                let got = node.broadcast(root, data).unwrap();
                (got.len(), got[0])
            })
            .unwrap();
            for r in &out.results {
                assert_eq!(*r, (100, root as u8), "{tool} root {root}");
            }
        }
    }
}

/// Global sums agree for vector lengths that do not divide the node
/// count evenly, for both supporting tools and odd process counts.
#[test]
fn global_sum_awkward_shapes() {
    for tool in [ToolKind::P4, ToolKind::EXPRESS] {
        for nprocs in [2usize, 3, 5] {
            let out = run_spmd(&cfg(tool, nprocs), move |node| {
                let mine: Vec<i32> = (0..7).map(|i| (node.rank() * 10 + i) as i32).collect();
                node.global_sum_i32(&mine).unwrap()
            })
            .unwrap();
            let expect: Vec<i32> = (0..7)
                .map(|i| (0..nprocs).map(|r| (r * 10 + i) as i32).sum())
                .collect();
            for r in &out.results {
                assert_eq!(r, &expect, "{tool} x{nprocs}");
            }
        }
    }
}

/// Back-to-back collectives of different kinds do not interfere (the
/// internal tag space keeps them apart).
#[test]
fn interleaved_collectives() {
    for tool in ToolKind::all() {
        let out = run_spmd(&cfg(tool, 4), |node| {
            let mut acc = 0u64;
            for round in 0..5u32 {
                node.barrier().unwrap();
                let data = if node.rank() == (round as usize) % 4 {
                    Bytes::from(round.to_le_bytes().to_vec())
                } else {
                    Bytes::new()
                };
                let got = node.broadcast((round as usize) % 4, data).unwrap();
                acc += u32::from_le_bytes(got[..4].try_into().unwrap()) as u64;
                let shifted = node.ring_shift(Bytes::from(vec![round as u8])).unwrap();
                acc += shifted[0] as u64;
            }
            acc
        })
        .unwrap();
        let expect = out.results[0];
        assert!(out.results.iter().all(|r| *r == expect), "{tool}");
    }
}

/// A rank that panics mid-protocol surfaces as a `ProcPanic`, never as a
/// hang or a corrupted result.
#[test]
fn mid_protocol_panic_is_reported() {
    let err = run_spmd(&cfg(ToolKind::P4, 3), |node| {
        if node.rank() == 1 {
            panic!("injected failure");
        }
        node.barrier().unwrap();
    })
    .unwrap_err();
    match err {
        RunError::Sim(SimError::ProcPanic { name, message }) => {
            assert_eq!(name, "rank1");
            assert!(message.contains("injected failure"));
        }
        other => panic!("expected ProcPanic, got {other:?}"),
    }
}

/// Sending to a dead rank index fails fast with a typed error on every
/// tool (the paper's error-handling criterion, done right).
#[test]
fn typed_errors_for_bad_arguments() {
    for tool in ToolKind::all() {
        let out = run_spmd(&cfg(tool, 2), |node| {
            let bad_rank = node.send(9, 1, Bytes::new()).unwrap_err();
            let bad_src = node.recv(Some(9), None).unwrap_err();
            (bad_rank, bad_src)
        })
        .unwrap();
        for (a, b) in &out.results {
            assert!(
                matches!(a, ToolError::InvalidRank { rank: 9, .. }),
                "{tool}"
            );
            assert!(
                matches!(b, ToolError::InvalidRank { rank: 9, .. }),
                "{tool}"
            );
        }
    }
}

/// Virtual time never runs backwards across any sequence of operations,
/// and all ranks finish at a consistent global time.
#[test]
fn time_is_monotone_per_rank() {
    for tool in ToolKind::all() {
        let out = run_spmd(&cfg(tool, 4), |node| {
            let mut last = node.now();
            let mut stamps = Vec::new();
            for i in 0..4u32 {
                node.barrier().unwrap();
                let data = if node.rank() == 0 {
                    Bytes::from(vec![0u8; 2048])
                } else {
                    Bytes::new()
                };
                node.broadcast(0, data).unwrap();
                let now = node.now();
                assert!(now >= last, "clock went backwards at round {i}");
                last = now;
                stamps.push(now.as_nanos());
            }
            stamps
        })
        .unwrap();
        // All ranks saw strictly increasing stamps.
        for stamps in &out.results {
            assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{tool}");
        }
    }
}

/// Payload integrity survives fragmentation boundaries: sizes straddling
/// every MTU in the system (PVM's 4 KB, Ethernet 1460, ATM 9180).
#[test]
fn fragmentation_boundary_sizes() {
    for tool in ToolKind::all() {
        for platform in [Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN] {
            for size in [1459usize, 1460, 1461, 4095, 4096, 4097, 9179, 9180, 9181] {
                let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
                let expect = payload.clone();
                let out = run_spmd(&SpmdConfig::new(platform, tool, 2), move |node| {
                    if node.rank() == 0 {
                        node.send(1, 3, Bytes::from(payload.clone())).unwrap();
                        true
                    } else {
                        let msg = node.recv(Some(0), Some(3)).unwrap();
                        msg.data.to_vec() == expect
                    }
                })
                .unwrap();
                assert!(out.results[1], "{tool} {platform} size {size}");
            }
        }
    }
}
