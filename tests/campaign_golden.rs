//! Golden equivalence tests for the campaign rewire.
//!
//! The `core::tpl` / `core::apl` sweeps now generate their series through
//! the campaign engine (declared scenarios + reusable harnesses). These
//! tests pin that rewire: each sweep is compared against a *direct*
//! reference implementation — the pre-rewire loop over `run_spmd`,
//! reproduced verbatim here — and must match bit-for-bit. A second group
//! asserts that parallel campaign runs render byte-identical JSONL
//! stores to serial runs.

use bytes::Bytes;
use pdc_tool_eval::campaign::runner::run_campaign;
use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::ScenarioGrid;
use pdc_tool_eval::campaign::{Kernel, Scale};
use pdc_tool_eval::core::apl::{app_sweep, AplApp, AplConfig};
use pdc_tool_eval::core::tpl::{
    broadcast_sweep, global_sum_sweep, ring_sweep, send_recv_sweep, BroadcastConfig,
    GlobalSumConfig, GlobalSumResult, RingConfig, SendRecvConfig, TimingPoint,
};
use pdc_tool_eval::mpt::runtime::{run_spmd, SpmdConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

// ---------------------------------------------------------------------------
// Direct reference implementations (the pre-rewire sweep loops).
// ---------------------------------------------------------------------------

fn direct_send_recv(cfg: &SendRecvConfig) -> Vec<TimingPoint> {
    let iters = cfg.iters.max(1);
    let mut points = Vec::new();
    for &kb in &cfg.sizes_kb {
        let bytes = (kb * 1024) as usize;
        let run_cfg = SpmdConfig::new(cfg.platform, cfg.tool, 2);
        let out = run_spmd(&run_cfg, move |node| {
            let payload = Bytes::from(vec![0u8; bytes]);
            let start = node.now();
            for i in 0..iters {
                let tag = i;
                if node.rank() == 0 {
                    node.send(1, tag, payload.clone()).expect("send failed");
                    let _ = node.recv(Some(1), Some(tag)).expect("recv failed");
                } else {
                    let _ = node.recv(Some(0), Some(tag)).expect("recv failed");
                    node.send(0, tag, payload.clone()).expect("send failed");
                }
            }
            (node.now() - start).as_millis_f64()
        })
        .expect("reference run failed");
        points.push(TimingPoint::new(
            kb * 1024,
            out.results[0] / (2.0 * iters as f64),
        ));
    }
    points
}

fn direct_broadcast(cfg: &BroadcastConfig) -> Vec<TimingPoint> {
    let mut points = Vec::new();
    for &kb in &cfg.sizes_kb {
        let bytes = (kb * 1024) as usize;
        let run_cfg = SpmdConfig::new(cfg.platform, cfg.tool, cfg.nprocs);
        let out = run_spmd(&run_cfg, move |node| {
            let data = if node.rank() == 0 {
                Bytes::from(vec![0u8; bytes])
            } else {
                Bytes::new()
            };
            let got = node.broadcast(0, data).expect("broadcast failed");
            assert_eq!(got.len(), bytes);
            node.now().as_millis_f64()
        })
        .expect("reference run failed");
        let done = out.results.iter().cloned().fold(0.0, f64::max);
        points.push(TimingPoint::new(kb * 1024, done));
    }
    points
}

fn direct_ring(cfg: &RingConfig) -> Vec<TimingPoint> {
    let shifts = cfg.shifts.max(1);
    let nprocs = cfg.nprocs;
    let mut points = Vec::new();
    for &kb in &cfg.sizes_kb {
        let bytes = (kb * 1024) as usize;
        let run_cfg = SpmdConfig::new(cfg.platform, cfg.tool, nprocs);
        let out = run_spmd(&run_cfg, move |node| {
            let mut data = Bytes::from(vec![node.rank() as u8; bytes]);
            for _ in 0..shifts {
                data = node.ring_shift(data).expect("ring shift failed");
            }
            node.now().as_millis_f64()
        })
        .expect("reference run failed");
        let done = out.results.iter().cloned().fold(0.0, f64::max);
        points.push(TimingPoint::new(kb * 1024, done / shifts as f64));
    }
    points
}

fn direct_global_sum(cfg: &GlobalSumConfig) -> Vec<TimingPoint> {
    let mut points = Vec::new();
    for &n in &cfg.vector_sizes {
        let run_cfg = SpmdConfig::new(cfg.platform, cfg.tool, cfg.nprocs);
        let out = run_spmd(&run_cfg, move |node| {
            let mine: Vec<i32> = (0..n as i32).map(|i| i + node.rank() as i32).collect();
            let _ = node.global_sum_i32(&mine).expect("global sum failed");
            node.now().as_millis_f64()
        })
        .expect("reference run failed");
        let done = out.results.iter().cloned().fold(0.0, f64::max);
        points.push(TimingPoint::new(n, done));
    }
    points
}

// ---------------------------------------------------------------------------
// Golden equivalence: campaign-driven sweeps == direct reference loops.
// ---------------------------------------------------------------------------

#[test]
fn send_recv_series_match_direct_runs() {
    for (platform, tool) in [
        (Platform::SUN_ETHERNET, ToolKind::P4),
        (Platform::SUN_ATM_LAN, ToolKind::PVM),
        (Platform::SUN_ATM_WAN, ToolKind::P4),
    ] {
        let cfg = SendRecvConfig {
            platform,
            tool,
            sizes_kb: vec![0, 4, 16, 64],
            iters: 2,
        };
        assert_eq!(
            send_recv_sweep(&cfg).unwrap(),
            direct_send_recv(&cfg),
            "{tool} on {platform}"
        );
    }
}

#[test]
fn broadcast_series_match_direct_runs() {
    for tool in ToolKind::all() {
        let cfg = BroadcastConfig {
            platform: Platform::SUN_ETHERNET,
            tool,
            nprocs: 4,
            sizes_kb: vec![0, 8, 64],
        };
        assert_eq!(
            broadcast_sweep(&cfg).unwrap(),
            direct_broadcast(&cfg),
            "{tool}"
        );
    }
}

#[test]
fn ring_series_match_direct_runs() {
    for tool in ToolKind::all() {
        let cfg = RingConfig {
            platform: Platform::SUN_ATM_LAN,
            tool,
            nprocs: 4,
            sizes_kb: vec![1, 16, 64],
            shifts: 2,
        };
        assert_eq!(ring_sweep(&cfg).unwrap(), direct_ring(&cfg), "{tool}");
    }
}

#[test]
fn global_sum_series_match_direct_runs() {
    for tool in [ToolKind::P4, ToolKind::EXPRESS] {
        let cfg = GlobalSumConfig {
            platform: Platform::SUN_ETHERNET,
            tool,
            nprocs: 4,
            vector_sizes: vec![1_000, 50_000],
        };
        match global_sum_sweep(&cfg).unwrap() {
            GlobalSumResult::Timed(pts) => assert_eq!(pts, direct_global_sum(&cfg), "{tool}"),
            GlobalSumResult::Unsupported(e) => panic!("unexpectedly unsupported: {e}"),
        }
    }
}

#[test]
fn app_series_match_direct_workload_runs() {
    use pdc_tool_eval::apps::monte_carlo::MonteCarlo;
    use pdc_tool_eval::apps::workload::run_workload;

    let cfg = AplConfig {
        app: AplApp::MonteCarlo,
        platform: Platform::ALPHA_FDDI,
        tool: ToolKind::EXPRESS,
        procs: vec![1, 2, 4],
        scale: Scale::Quick,
    };
    let campaign_pts = app_sweep(&cfg).unwrap();
    for pt in &campaign_pts {
        let direct = run_workload(
            &MonteCarlo {
                samples: 50_000,
                seed: 77,
            },
            &SpmdConfig::new(cfg.platform, cfg.tool, pt.procs),
        )
        .unwrap();
        assert_eq!(pt.seconds, direct.elapsed.as_secs_f64(), "P={}", pt.procs);
    }
}

// ---------------------------------------------------------------------------
// Parallel == serial, down to the stored bytes.
// ---------------------------------------------------------------------------

#[test]
fn parallel_campaign_stores_are_byte_identical_to_serial() {
    let scenarios = ScenarioGrid::new()
        .kernels([
            Kernel::SendRecv { iters: 1 },
            Kernel::Broadcast,
            Kernel::Ring { shifts: 1 },
            Kernel::GlobalSum,
        ])
        .tools(ToolKind::all())
        .platforms([
            Platform::SUN_ETHERNET,
            Platform::SUN_ATM_LAN,
            Platform::SUN_ATM_WAN,
        ])
        .nprocs([2, 4])
        .sizes([1024, 16 * 1024])
        .reps(2)
        .scenarios();
    assert!(scenarios.len() > 50, "grid too small to exercise workers");
    let meta = StoreMeta {
        git_sha: Some("test-sha".to_string()),
        timestamp: Some(1_753_000_000),
        emit_counters: false,
    };
    let serial = render_jsonl(&run_campaign(&scenarios, 1), &meta);
    let parallel = render_jsonl(&run_campaign(&scenarios, 8), &meta);
    assert_eq!(serial, parallel);
    assert_eq!(serial.lines().count(), scenarios.len());
}
