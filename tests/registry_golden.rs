//! Golden tests for the registry refactor: the paper's default campaigns
//! (tables + figures series) must render **byte-identical** JSONL stores
//! to the committed pre-refactor captures under `tests/golden/`.
//!
//! The captures were produced by `examples/golden_capture.rs` on the
//! enum-based modeling layer, immediately before `ToolKind`/`Platform`
//! became registry handles; these tests therefore pin the refactor (and
//! any future registry growth) to exact numeric and textual equality.
//! If a *deliberate* model recalibration changes the numbers, regenerate
//! the captures with `cargo run --release --example golden_capture`.

use pdc_tool_eval::campaign::campaigns;
use pdc_tool_eval::campaign::runner::run_campaign;
use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::Scale;
use std::path::Path;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn assert_campaign_matches_golden(name: &str) {
    let campaign =
        campaigns::by_name(name, Scale::Quick).unwrap_or_else(|| panic!("unknown campaign {name}"));
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"));
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", golden_path.display()));
    let fresh = render_jsonl(
        &run_campaign(&campaign.scenarios, workers()),
        &StoreMeta::none(),
    );
    assert!(
        fresh == golden,
        "campaign '{name}' drifted from its pre-refactor golden store \
         ({} fresh vs {} golden lines); first differing line: {:?}",
        fresh.lines().count(),
        golden.lines().count(),
        fresh
            .lines()
            .zip(golden.lines())
            .find(|(f, g)| f != g)
            .map(|(f, g)| format!("fresh: {f}\ngolden: {g}")),
    );
}

#[test]
fn table3_series_are_byte_identical() {
    assert_campaign_matches_golden("table3-sendrecv");
}

#[test]
fn figure2_broadcast_series_are_byte_identical() {
    assert_campaign_matches_golden("fig2-broadcast");
}

#[test]
fn figure3_ring_series_are_byte_identical() {
    assert_campaign_matches_golden("fig3-ring");
}

#[test]
fn figure4_globalsum_series_are_byte_identical() {
    assert_campaign_matches_golden("fig4-globalsum");
}

#[test]
fn figure5_app_series_are_byte_identical() {
    assert_campaign_matches_golden("fig5-apps-alpha");
}

#[test]
fn figure6_app_series_are_byte_identical() {
    assert_campaign_matches_golden("fig6-apps-sp1");
}

#[test]
fn figure7_app_series_are_byte_identical() {
    assert_campaign_matches_golden("fig7-apps-nynet");
}

#[test]
fn figure8_app_series_are_byte_identical() {
    assert_campaign_matches_golden("fig8-apps-ethernet");
}

#[test]
fn quick_campaign_is_byte_identical() {
    assert_campaign_matches_golden("quick");
}

/// The default campaigns must pin the built-in models: registering extra
/// specs (as `--spec` does) must not change a single declared scenario.
#[test]
fn default_campaigns_are_immune_to_registry_growth() {
    use pdc_tool_eval::mpt::ModelRegistry;

    let before: Vec<Vec<String>> = campaigns::all(Scale::Quick)
        .iter()
        .map(|c| c.scenarios.iter().map(|s| s.key()).collect())
        .collect();

    let spec_text =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/modern.spec"))
            .expect("demo spec readable");
    ModelRegistry::global()
        .load_spec_text(&spec_text)
        .expect("demo spec loads");

    let after: Vec<Vec<String>> = campaigns::all(Scale::Quick)
        .iter()
        .map(|c| c.scenarios.iter().map(|s| s.key()).collect())
        .collect();
    assert_eq!(before, after, "a default campaign absorbed registry growth");
}
