//! Trace-subsystem integration tests.
//!
//! The Chrome trace-event export of a small 4-rank send/recv scenario is
//! pinned byte-for-byte against a committed golden capture (like the
//! JSONL store goldens in `registry_golden.rs`), and a crash-injected
//! run's partial trace must end with the crash event on the crashed rank
//! while the survivors' span timelines stay intact.

use bytes::Bytes;
use pdc_tool_eval::campaign::{Executor, Kernel, Scenario};
use pdc_tool_eval::mpt::error::RunError;
use pdc_tool_eval::mpt::runtime::SpmdHarness;
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::perturb::{PerturbConfig, PerturbSpec};
use pdc_tool_eval::simnet::platform::Platform;
use pdc_tool_eval::simnet::trace::{TraceEvent, TraceSink};
use std::path::Path;
use std::sync::Arc;

/// Runs the pinned 4-rank send/recv scenario traced and renders its
/// Chrome trace-event JSON, titled by the scenario key.
fn rendered_sendrecv4_trace() -> String {
    let sc = Scenario {
        kernel: Kernel::SendRecv { iters: 2 },
        tool: ToolKind::P4,
        platform: Platform::SUN_ETHERNET,
        nprocs: 4,
        size: 1024,
        reps: 1,
        perturb: None,
    };
    let mut exec = Executor::new();
    exec.set_tracing(true);
    exec.run(&sc).expect("traced send/recv scenario runs");
    let cap = exec.take_capture().expect("traced run leaves a capture");
    let sink = cap.sink.expect("tracing was enabled");
    let sink = sink.lock().expect("trace sink poisoned");
    sink.render_chrome(&sc.key())
}

/// The Chrome trace of the 4-rank send/recv scenario is byte-identical
/// to the committed golden capture. If a *deliberate* model or trace
/// change moves it, regenerate with
/// `PDCEVAL_REGEN_TRACE_GOLDEN=1 cargo test --test trace`.
#[test]
fn sendrecv4_chrome_trace_matches_golden() {
    let fresh = rendered_sendrecv4_trace();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace-sendrecv4.json");
    if std::env::var_os("PDCEVAL_REGEN_TRACE_GOLDEN").is_some() {
        std::fs::write(&path, &fresh).expect("golden regeneration write");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert!(
        fresh == golden,
        "send/recv Chrome trace drifted from its golden capture \
         ({} fresh vs {} golden lines); first differing line: {:?}",
        fresh.lines().count(),
        golden.lines().count(),
        fresh
            .lines()
            .zip(golden.lines())
            .find(|(f, g)| f != g)
            .map(|(f, g)| format!("fresh: {f}\ngolden: {g}")),
    );
}

/// A crash-injected run leaves a partial trace: the crashed rank's
/// timeline ends with the crash event, the crash lands in the fault
/// tally, and every surviving rank keeps its recorded spans (and no
/// crash). The partial timeline still renders as well-formed Chrome
/// trace JSON.
#[test]
fn crash_trace_ends_with_crash_and_survivors_keep_spans() {
    let mut spec = PerturbSpec::quiet("trace-crash-test");
    spec.crash_rank = Some(1);
    // Deep enough into the run that every survivor has closed spans by
    // the time the crash aborts the simulation.
    spec.crash_at_us = Some(50_000.0);
    let cfg = PerturbConfig {
        spec: Arc::new(spec),
        seed: 3,
    };
    let nprocs = 4;
    let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, nprocs).unwrap();
    let sink = TraceSink::shared(nprocs);
    let err = h
        .run_perturbed_traced(ToolKind::P4, Some(&cfg), Some(Arc::clone(&sink)), |node| {
            // Ring traffic keeps every rank talking past the crash point.
            for _ in 0..50 {
                node.ring_shift(Bytes::from(vec![0u8; 2048])).unwrap();
            }
        })
        .unwrap_err();
    assert!(
        matches!(err, RunError::RankCrashed { rank: 1, .. }),
        "expected RankCrashed, got {err:?}"
    );

    let sink = sink.lock().expect("trace sink poisoned");
    assert!(
        matches!(sink.rank_events(1).last(), Some(TraceEvent::Crash { .. })),
        "crashed rank's timeline must end with the crash event, got {:?}",
        sink.rank_events(1).last()
    );
    let summary = sink.summary(&[]);
    assert_eq!(summary.crash.map(|(rank, _)| rank), Some(1));
    for rank in (0..nprocs).filter(|&r| r != 1) {
        let events = sink.rank_events(rank);
        assert!(
            events.iter().any(|e| matches!(e, TraceEvent::Span { .. })),
            "survivor rank {rank} lost its spans"
        );
        assert!(
            !events.iter().any(|e| matches!(e, TraceEvent::Crash { .. })),
            "survivor rank {rank} must not record a crash"
        );
    }
    let chrome = sink.render_chrome("crash-demo");
    assert!(chrome.contains("\"name\": \"crash\""));
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
}
