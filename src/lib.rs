//! # pdc-tool-eval
//!
//! Façade crate for the reproduction of *"Software Tool Evaluation
//! Methodology"* (Hariri, Park, Reddy, Subramanyan et al., NPAC/Syracuse
//! University, 1995) — a multi-level evaluation methodology for
//! parallel/distributed computing (PDC) message-passing tools.
//!
//! The workspace is organized as four library crates, re-exported here:
//!
//! * [`simnet`] — deterministic discrete-event simulator of the 1995 NPAC
//!   testbed (hosts, networks, contention resources, processes);
//! * [`mpt`] — the three message-passing tools the paper evaluates
//!   (Express, p4, PVM), implemented as runtimes over the simulator;
//! * [`apps`] — the SU PDABS application benchmark suite (JPEG, 2-D FFT,
//!   Monte Carlo integration, PSRS sorting, and more);
//! * [`campaign`] — declarative scenario sweeps: campaign grids, parallel
//!   execution over reusable cluster skeletons, the JSONL results store
//!   and regression gating (the `pdceval` CLI is built on this);
//! * [`core`] — the paper's contribution: the TPL / APL / ADL multi-level
//!   evaluation methodology, weighted scoring, and every table and figure
//!   of the paper's evaluation as a regenerable experiment.
//!
//! # Quickstart
//!
//! ```
//! use pdc_tool_eval::core::tpl::{SendRecvConfig, send_recv_sweep};
//! use pdc_tool_eval::mpt::ToolKind;
//! use pdc_tool_eval::simnet::platform::Platform;
//!
//! // Time the p4 send/receive primitive on the SUN/Ethernet testbed.
//! let cfg = SendRecvConfig {
//!     platform: Platform::SUN_ETHERNET,
//!     tool: ToolKind::P4,
//!     sizes_kb: vec![0, 1, 4],
//!     iters: 4,
//! };
//! let points = send_recv_sweep(&cfg).unwrap();
//! assert_eq!(points.len(), 3);
//! assert!(points[0].millis < points[2].millis);
//! ```

#![forbid(unsafe_code)]

pub use pdceval_apps as apps;
pub use pdceval_campaign as campaign;
pub use pdceval_core as core;
pub use pdceval_mpt as mpt;
pub use pdceval_simnet as simnet;
