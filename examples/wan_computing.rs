//! The paper's NYNET claim: "it is feasible to build distributed
//! computing systems across an ATM WAN and their performance is
//! comparable to those based on LANs" — and can beat a slow LAN.
//!
//! This example reruns that comparison: the same applications on the
//! Ethernet LAN versus the NYNET ATM WAN.
//!
//! ```bash
//! cargo run --release --example wan_computing
//! ```

use pdc_tool_eval::core::apl::{app_sweep, AplApp, AplConfig, Scale};
use pdc_tool_eval::core::tpl::{send_recv_sweep, SendRecvConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

fn main() {
    // Raw primitive: 64 KB one-way time, LAN vs WAN.
    println!("p4 snd/rcv, 64 KB one-way:");
    for platform in [
        Platform::SUN_ETHERNET,
        Platform::SUN_ATM_LAN,
        Platform::SUN_ATM_WAN,
    ] {
        let pts = send_recv_sweep(&SendRecvConfig {
            platform,
            tool: ToolKind::P4,
            sizes_kb: vec![64],
            iters: 1,
        })
        .expect("sweep failed");
        println!("  {:24} {:>8.2} ms", platform.to_string(), pts[0].millis);
    }

    // Applications: 4 processors, Ethernet LAN vs ATM WAN.
    println!("\napplications with p4 on 4 processors (seconds):");
    println!("{:>28} {:>12} {:>12}", "", "Ethernet LAN", "ATM WAN");
    for app in [
        AplApp::Jpeg,
        AplApp::Fft,
        AplApp::MonteCarlo,
        AplApp::Sorting,
    ] {
        let mut times = Vec::new();
        for platform in [Platform::SUN_ETHERNET, Platform::SUN_ATM_WAN] {
            let pts = app_sweep(&AplConfig {
                app,
                platform,
                tool: ToolKind::P4,
                procs: vec![4],
                scale: Scale::Paper,
            })
            .expect("sweep failed");
            times.push(pts[0].seconds);
        }
        let verdict = if times[1] < times[0] {
            "WAN wins"
        } else {
            "LAN wins"
        };
        println!(
            "{:>28} {:>11.3}s {:>11.3}s   {verdict}",
            app.title(),
            times[0],
            times[1]
        );
    }
    println!(
        "\nThe WAN hosts are faster (IPX vs ELC) and ATM far outruns shared\n\
         10 Mb/s Ethernet, so wide-area distributed computing wins for the\n\
         communication-heavy applications — the paper's NYNET conclusion."
    );
}
