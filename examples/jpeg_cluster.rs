//! Run the JPEG compression workload (the paper's motivating digital-
//! imaging application) on the Alpha/FDDI cluster under all three tools
//! and print the strong-scaling curves of Figure 5's JPEG pane.
//!
//! ```bash
//! cargo run --release --example jpeg_cluster
//! ```

use pdc_tool_eval::apps::jpeg::JpegCompression;
use pdc_tool_eval::apps::workload::{run_workload, Workload};
use pdc_tool_eval::mpt::runtime::SpmdConfig;
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

fn main() {
    let image = JpegCompression {
        width: 512,
        height: 512,
        seed: 9,
    };
    let reference = image.sequential();
    println!(
        "JPEG: {}x{} image -> {} compressed bytes (checksum {:#x})\n",
        image.width, image.height, reference.compressed_len, reference.checksum
    );

    println!(
        "{:>6} {:>12} {:>12} {:>12}   (seconds on {})",
        "procs",
        "Express",
        "p4",
        "PVM",
        Platform::ALPHA_FDDI
    );
    for procs in [1usize, 2, 4, 8] {
        let mut row = format!("{procs:>6}");
        for tool in [ToolKind::EXPRESS, ToolKind::P4, ToolKind::PVM] {
            let out = run_workload(&image, &SpmdConfig::new(Platform::ALPHA_FDDI, tool, procs))
                .expect("run failed");
            // Every tool and processor count must produce the identical
            // compressed stream.
            assert_eq!(
                out.results[0], reference,
                "{tool} x{procs} corrupted output"
            );
            row.push_str(&format!(" {:>11.3}s", out.elapsed.as_secs_f64()));
        }
        println!("{row}");
    }
    println!(
        "\nAll runs produce bit-identical compressed output; only the clock\n\
         differs. p4's thin communication layer wins the distribute/collect\n\
         phases, exactly as the paper reports."
    );
}
