//! The paper's headline use case: a *tailored, multi-level tool
//! selection*. Two different users — a performance-hungry scientist and a
//! usability-focused developer — evaluate the same three tools on the
//! same measurements and get different, defensible recommendations.
//!
//! ```bash
//! cargo run --release --example evaluate_tools
//! ```

use pdc_tool_eval::core::adl::Criterion;
use pdc_tool_eval::core::apl::{app_sweep, AplApp, AplConfig, Scale};
use pdc_tool_eval::core::score::{Evaluator, LevelWeights, Measurement};
use pdc_tool_eval::core::tpl::{send_recv_sweep, SendRecvConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

fn main() {
    let platform = Platform::ALPHA_FDDI;
    println!("gathering measurements on {platform}...\n");

    // One TPL measurement: 16 KB point-to-point latency.
    let mut tpl_times = Vec::new();
    for tool in ToolKind::all() {
        let pts = send_recv_sweep(&SendRecvConfig {
            platform,
            tool,
            sizes_kb: vec![16],
            iters: 1,
        })
        .expect("sweep failed");
        tpl_times.push((tool, Some(pts[0].millis / 1000.0)));
    }

    // Two APL measurements: JPEG and sorting at 8 processors.
    let mut apl_measurements = Vec::new();
    for app in [AplApp::Jpeg, AplApp::Sorting] {
        let mut times = Vec::new();
        for tool in ToolKind::all() {
            let pts = app_sweep(&AplConfig {
                app,
                platform,
                tool,
                procs: vec![8],
                scale: Scale::Quick,
            })
            .expect("sweep failed");
            times.push((tool, Some(pts[0].seconds)));
        }
        apl_measurements.push(Measurement::new(format!("{app} @ 8 procs"), times));
    }

    for (persona, weights, extra) in [
        (
            "performance user (APL weighted 2x)",
            LevelWeights::performance_user(),
            None,
        ),
        (
            "usability-first team (ADL weighted 4x, debugging 3x)",
            LevelWeights {
                tpl: 0.25,
                apl: 0.75,
                adl: 4.0,
            },
            Some((Criterion::DebuggingSupport, 3.0)),
        ),
    ] {
        let mut eval = Evaluator::new();
        eval.level_weights(weights);
        if let Some((c, w)) = extra {
            eval.criterion_weight(c, w);
        }
        eval.tpl_measurement(Measurement::new("snd/rcv 16KB", tpl_times.clone()));
        for m in &apl_measurements {
            eval.apl_measurement(m.clone());
        }
        println!("== {persona} ==");
        for score in eval.evaluate() {
            println!("  {score}");
        }
        println!();
    }

    println!(
        "Different weightings produce different winners — the paper's point:\n\
         the \"best\" tool is a function of the user's priorities, and the\n\
         methodology makes that function explicit."
    );
}
