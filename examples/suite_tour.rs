//! A tour of the full SU PDABS suite (paper Table 2): run every
//! implemented application on a small cluster, verify each against its
//! sequential reference, and print the catalog with timings.
//!
//! ```bash
//! cargo run --release --example suite_tour
//! ```

use pdc_tool_eval::apps;
use pdc_tool_eval::apps::workload::{run_workload, Workload};
use pdc_tool_eval::mpt::runtime::SpmdConfig;
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

fn check<W: Workload>(w: &W, cfg: &SpmdConfig) -> (String, f64, bool)
where
    W::Output: PartialEq,
{
    let expect = w.sequential();
    let out = run_workload(w, cfg).expect("run failed");
    let ok = out.results[0] == expect;
    (w.name().to_string(), out.elapsed.as_secs_f64(), ok)
}

fn main() {
    let cfg = SpmdConfig::new(Platform::ALPHA_FDDI, ToolKind::P4, 4);
    println!(
        "SU PDABS on {} x4 under {} (small workloads):\n",
        cfg.platform, cfg.tool
    );

    let results = vec![
        check(&apps::fft::Fft2d::small(), &cfg),
        check(&apps::lu::LuDecomposition::small(), &cfg),
        check(&apps::solver::JacobiSolver::small(), &cfg),
        check(&apps::matmul::MatMul::small(), &cfg),
        check(&apps::crypto::KeySearch::small(), &cfg),
        check(&apps::jpeg::JpegCompression::small(), &cfg),
        check(&apps::hough::HoughTransform::small(), &cfg),
        check(&apps::raytrace::RayTrace::small(), &cfg),
        check(&apps::nbody::NBody::small(), &cfg),
        {
            // Monte Carlo sums in partition order, so compare the estimate
            // to fp-reassociation tolerance rather than bitwise.
            let w = apps::monte_carlo::MonteCarlo::small();
            let expect = w.sequential();
            let out = run_workload(&w, &cfg).expect("run failed");
            let ok = (out.results[0].estimate - expect.estimate).abs() < 1e-9;
            (w.name().to_string(), out.elapsed.as_secs_f64(), ok)
        },
        check(&apps::tsp::Tsp::small(), &cfg),
        check(&apps::knapsack::Knapsack::small(), &cfg),
        check(&apps::psrs::PsrsSort::small(), &cfg),
        check(&apps::search::ParallelSearch::small(), &cfg),
        check(&apps::spell::SpellCheck::small(), &cfg),
        check(&apps::dmake::DistributedMake::small(), &cfg),
    ];

    println!("{:>28} {:>12} {:>9}", "application", "sim time", "verified");
    for (name, secs, ok) in &results {
        println!(
            "{name:>28} {:>11.4}s {:>9}",
            secs,
            if *ok { "ok" } else { "MISMATCH" }
        );
    }
    assert!(results.iter().all(|(_, _, ok)| *ok), "a workload diverged");
    println!(
        "\n{} applications, every distributed result identical to its\n\
         sequential reference.",
        results.len()
    );
}
