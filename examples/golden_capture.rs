//! Regenerates the committed golden stores under `tests/golden/`.
//!
//! The golden files pin the default campaigns' series byte-for-byte
//! across refactors (see `tests/registry_golden.rs`). Run this only when
//! a model recalibration *intends* to change the numbers:
//!
//! ```bash
//! cargo run --release --example golden_capture
//! ```

use pdc_tool_eval::campaign::campaigns;
use pdc_tool_eval::campaign::runner::run_campaign;
use pdc_tool_eval::campaign::store::{render_jsonl, StoreMeta};
use pdc_tool_eval::campaign::Scale;
use std::path::Path;

fn main() {
    let dir = Path::new("tests/golden");
    std::fs::create_dir_all(dir).expect("create tests/golden");
    // Quick scale keeps the application campaigns fast; the TPL campaigns
    // (tables + figures 2-4) are scale-independent.
    for c in campaigns::all(Scale::Quick) {
        let records = run_campaign(&c.scenarios, 1);
        let text = render_jsonl(&records, &StoreMeta::none());
        let path = dir.join(format!("{}.jsonl", c.name));
        std::fs::write(&path, &text).expect("write golden store");
        println!("{}: {} record(s)", path.display(), records.len());
        // The CI regression gate diffs against baselines/quick.jsonl;
        // refreshing it here keeps the golden store and the blessed
        // baseline from ever drifting apart (one command updates both).
        if c.name == "quick" {
            std::fs::create_dir_all("baselines").expect("create baselines");
            std::fs::write("baselines/quick.jsonl", &text).expect("write baseline");
            println!("baselines/quick.jsonl: refreshed");
        }
    }
}
