//! Quickstart: time one communication primitive on one 1995 testbed.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pdc_tool_eval::core::tpl::{send_recv_sweep, SendRecvConfig};
use pdc_tool_eval::mpt::ToolKind;
use pdc_tool_eval::simnet::platform::Platform;

fn main() {
    println!("snd/rcv one-way latency on {}:\n", Platform::SUN_ETHERNET);
    println!(
        "{:>9}  {:>10} {:>10} {:>10}",
        "size", "Express", "p4", "PVM"
    );
    let sizes = vec![0u64, 1, 4, 16, 64];

    let mut columns = Vec::new();
    for tool in [ToolKind::EXPRESS, ToolKind::P4, ToolKind::PVM] {
        let cfg = SendRecvConfig {
            platform: Platform::SUN_ETHERNET,
            tool,
            sizes_kb: sizes.clone(),
            iters: 1,
        };
        columns.push(send_recv_sweep(&cfg).expect("sweep failed"));
    }

    for (i, kb) in sizes.iter().enumerate() {
        println!(
            "{:>6} KB  {:>8.2}ms {:>8.2}ms {:>8.2}ms",
            kb, columns[0][i].millis, columns[1][i].millis, columns[2][i].millis
        );
    }
    println!(
        "\np4 is the thinnest layer over the transport, exactly as the paper\n\
         found; Express's buffer copies dominate at large sizes; PVM's\n\
         daemon route costs most at small sizes."
    );
}
